//! Durable segment-log persistence for the server's [`TableStore`].
//!
//! Until now Eve forgot every ciphertext on restart — but the paper's
//! model outsources the *database*: the provider durably holds Alex's
//! data, and a process crash at the provider must not erase it. This
//! module gives the server that property with the classic write-ahead
//! discipline, adapted to a store whose state is pure ciphertext:
//!
//! * **Append-only segment log.** Every applied mutation
//!   (create/append/delete/drop — and rekey, which the protocol
//!   expresses as drop + create + appends) is written to the *active*
//!   segment file as one length-prefixed, checksummed record and
//!   fsync'd before the response leaves the server. The record payload
//!   is the **raw client message**, verbatim: the log is byte-for-byte
//!   a prefix of the mutation transcript Eve records anyway, which is
//!   what makes the leakage argument below airtight and makes replay
//!   trivially equivalent to the original apply (every mutation is a
//!   deterministic function of store state).
//! * **Framing.** Records reuse the [`crate::codec`] discipline — a
//!   `u32`-LE length prefix and a defensive size cap — with an 8-byte
//!   truncated SHA-256 trailer over the body, so recovery can tell "a
//!   record ends exactly here" from "the machine died mid-write".
//! * **Manifest.** A checksummed `MANIFEST` file lists segment ids in
//!   replay order; all but the last are *sealed*, the last is active.
//!   The manifest is replaced atomically (temp file + rename + dir
//!   fsync), so every crash leaves a consistent segment list.
//! * **Compaction.** Once the active segment outgrows its threshold,
//!   the live store is rewritten as a *sealed snapshot segment*:
//!   bounded-size snapshot records per table, serialized straight from
//!   the columnar shard arenas (no boxed documents on the way out) —
//!   and on recovery loaded straight back into columnar shards via
//!   [`WordArena`] raw pushes and [`ShardedTable::from_arena`]'s
//!   arena-to-arena repartition (no boxed documents on the way in
//!   either). Compaction then swaps the manifest to
//!   `[snapshot, fresh active]` and deletes the old segments.
//! * **Recovery.** [`DurableLog::open`] replays manifest + segments.
//!   A torn tail record in the **active** segment — the expected shape
//!   of a crash mid-write or mid-fsync — is truncated away, never a
//!   panic and never a partial apply (a record replays only if its
//!   length, bytes, and checksum all land). Corruption in a *sealed*
//!   segment is unrecoverable data loss and reported as an error.
//!
//! **Leakage argument.** The disk image is a server-internal artifact
//! composed of exactly (a) the mutation messages Eve received, in the
//! order she applied them, and (b) ciphertext bytes she already holds
//! in memory, re-serialized. Eve *is* the server: persisting her own
//! view to her own disk gives her nothing she did not have, and the
//! adversary-visible transcript is recorded below this layer — the
//! byte-equality suites in `tests/durability.rs` pin responses *and*
//! [`crate::server::Observer`] transcripts identical with durability
//! on and off, across shard counts, pool sizes, and transports.

use std::collections::BTreeMap;
use std::fs::{self, File};
use std::io::{Cursor, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use dbph_crypto::sha256::Sha256;
use dbph_swp::SwpParams;

use crate::arena::WordArena;
use crate::codec;
use crate::error::PhError;
use crate::index::Posting;
use crate::protocol::tag;
use crate::storage::{ShardedTable, TableStore};
use crate::telemetry::Telemetry;
use crate::wire::{Reader, WireDecode, WireEncode};

/// Manifest file name inside the data directory.
const MANIFEST: &str = "MANIFEST";
/// Scratch name for the atomic manifest replace.
const MANIFEST_TMP: &str = "MANIFEST.tmp";
/// Advisory-lock file guarding the directory against a second live
/// owner.
const LOCK: &str = "LOCK";
/// Manifest magic bytes.
const MANIFEST_MAGIC: &[u8; 8] = b"dbphman1";
/// Manifest format version.
const MANIFEST_VERSION: u16 = 1;

/// Bytes of the truncated-SHA-256 record trailer.
pub(crate) const CHECKSUM_LEN: usize = 8;
/// Defensive cap on one record's framed payload. Mutation records are
/// single protocol messages (transport-capped far below this) and
/// snapshot records are chunked by construction; a length prefix
/// beyond the cap is corruption, treated like any torn tail.
pub(crate) const MAX_RECORD: usize = 256 << 20;

/// Budget for one replication pull's record chunk (4 MiB): well under
/// the transport frame cap so a [`ReplRead`] always frames, while a
/// catching-up follower still moves whole snapshot chunks per
/// round-trip.
pub(crate) const REPL_CHUNK_BYTES: u64 = 4 << 20;

/// How long a caught-up follower pull parks server-side waiting for
/// the next record before answering empty ([`DurableLog::repl_read`]'s
/// long poll). Bounded so an idle replication link still exchanges a
/// liveness round-trip at this cadence and a parked pull never pins
/// its serving thread for long.
pub(crate) const REPL_POLL_WAIT: Duration = Duration::from_millis(10);

/// Record tag: the body is one raw client mutation message.
pub(crate) const TAG_MUTATION: u8 = 0;
/// Record tag: the body is one compaction snapshot chunk.
const TAG_SNAPSHOT: u8 = 1;
/// Record tag: the body is the dedup-window image at a compaction
/// cut — per client `(id, watermark, applied seqs)`. Without it,
/// compaction (which discards the raw mutation records the window is
/// otherwise rebuilt from) would forget which request ids were
/// already applied, and a retry after compact + restart could
/// double-apply.
const TAG_DEDUP: u8 = 2;
/// Record tag: the body is the encrypted-index image at a compaction
/// cut — per table, `(label, (bound, posting ids))` entries
/// ([`crate::index`]). Written only when the index is enabled *and*
/// has postings, so a scan-only server's segments (and an indexed
/// server's before its first probe) stay byte-identical to the
/// pre-index format.
const TAG_INDEX: u8 = 3;

/// Tuning knobs for a [`DurableLog`].
#[derive(Debug, Clone)]
pub struct DurableOptions {
    /// Active-segment size (bytes) beyond which the next mutation
    /// triggers compaction into a sealed snapshot segment.
    pub compact_threshold: u64,
    /// Target body size (bytes) of one snapshot record; tables larger
    /// than this are written as multiple chunked records so no single
    /// record approaches the framing cap.
    pub snapshot_chunk_bytes: u64,
    /// Group commit: mutations still append their records strictly in
    /// apply order under the writer lock, but the `fdatasync` barrier
    /// is shared — one committer syncs on behalf of every record
    /// appended so far and acks all of their waiters at once, so N
    /// concurrent writers pay ~1 fsync per flush window instead of N.
    /// A lone serial writer leads every window itself and behaves
    /// exactly like fsync-per-mutation. `false` restores the PR 5
    /// one-fsync-per-mutation path (the equality suites and the bench
    /// baseline run both).
    pub group_commit: bool,
    /// How long a group-commit leader waits before issuing the shared
    /// fsync, letting more concurrent writers join the window. Zero
    /// (the default) syncs immediately — natural batching still
    /// coalesces whoever queued behind the previous sync.
    pub flush_window: std::time::Duration,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            compact_threshold: 64 << 20,
            snapshot_chunk_bytes: 8 << 20,
            group_commit: true,
            flush_window: std::time::Duration::ZERO,
        }
    }
}

/// One table rebuilt by recovery, still in columnar form — the server
/// turns it into a [`ShardedTable`] with an arena-to-arena partition.
pub struct RecoveredTable {
    /// Table name.
    pub(crate) name: String,
    /// The table's SWP parameters.
    pub(crate) params: SwpParams,
    /// All live documents, in document order.
    pub(crate) arena: WordArena,
    /// Next fresh document id.
    pub(crate) next_doc_id: u64,
}

/// Dedup-window state rebuilt by recovery, in log order. The server
/// feeds the events into [`crate::storage::DedupWindow`] after
/// installing the tables: snapshot events restore a compaction-time
/// window image, applied events re-insert each logged tagged mutation
/// exactly as live traffic did (same insertions, evictions, and
/// watermarks — so exactly-once survives restarts).
#[derive(Debug, Default)]
pub struct RecoveredDedup {
    pub(crate) events: Vec<DedupEvent>,
}

/// Encrypted-index state rebuilt by recovery: the multimap image the
/// last compaction persisted, if any. Non-empty only when the index
/// was enabled — installing it re-enables the index on the recovered
/// server.
#[derive(Debug, Default)]
pub struct RecoveredIndex {
    pub(crate) image: Vec<(String, Vec<(dbph_swp::IndexLabel, Posting)>)>,
}

/// Wire shape of a persisted index image: per table, each posting as
/// `(label bytes, (bound, doc ids))`.
type IndexImageWire = Vec<(String, Vec<(Vec<u8>, (u64, Vec<u64>))>)>;

/// One dedup-relevant observation during log replay.
#[derive(Debug)]
pub(crate) enum DedupEvent {
    /// A [`TAG_DEDUP`] record: one client's persisted window image.
    Snapshot {
        client_id: u64,
        watermark: u64,
        seqs: Vec<u64>,
    },
    /// A [`TAG_MUTATION`] record carrying the idempotent envelope:
    /// this `(client_id, seq)` was applied and acked.
    Applied { client_id: u64, seq: u64 },
}

/// Mutable write-side state, guarded by [`DurableLog::writer`].
struct Writer {
    /// The active segment, shared with the commit barrier so a
    /// group-commit leader can fsync it without holding the writer
    /// lock (appends through `&File` and `sync_data` are independent
    /// syscalls on one fd).
    active: Arc<File>,
    active_id: u64,
    active_bytes: u64,
    /// Sealed segment ids, in replay order (before the active one).
    sealed: Vec<u64>,
    /// Byte length of each sealed segment, parallel to `sealed` — the
    /// replication cursor maps virtual stream offsets onto files with
    /// it, without re-statting on every pull.
    sealed_bytes: Vec<u64>,
}

/// The group-commit barrier, guarded by [`DurableLog::commit`].
///
/// Records are numbered in append order (`appended`); `synced` is the
/// high-water mark of records made durable — by a shared `fdatasync`
/// or by a compaction's snapshot (whose manifest swap durably covers
/// everything applied so far). A waiter is acked exactly when
/// `synced >= its sequence`, so disk-order == apply-order == ack-order
/// and no mutation is ever acknowledged before the barrier that
/// persisted it.
struct CommitState {
    /// Records appended to the log so far (monotone).
    appended: u64,
    /// Records known durable (monotone, `<= appended`).
    synced: u64,
    /// Whether some thread is currently the sync leader.
    syncing: bool,
    /// Threads currently inside [`DurableLog::wait_durable`]. A leader
    /// electing itself with `waiters == 1` and its own record at the
    /// append high-water mark is *serial*: nobody can join its window,
    /// so it skips the flush-window sleep instead of paying pure added
    /// latency for zero batching.
    waiters: u64,
    /// The file the next shared fsync must hit — tracks the active
    /// segment across compaction swaps.
    file: Arc<File>,
}

/// The append-only segment log behind a durable
/// [`crate::server::Server`]. See the module docs for the format and
/// the crash-recovery contract.
pub struct DurableLog {
    dir: PathBuf,
    options: DurableOptions,
    writer: Mutex<Writer>,
    /// Group-commit barrier state; lock order is `writer` → `commit`
    /// when both are held (appends), `commit` alone otherwise
    /// (waiting / leading a sync).
    commit: Mutex<CommitState>,
    /// Wakes waiters when `synced` advances or the log poisons.
    commit_cv: Condvar,
    /// Set on the first write-side failure: a log that may have lost a
    /// record must stop acknowledging mutations (fail closed) rather
    /// than silently breaking the recovery guarantee.
    poisoned: AtomicBool,
    /// Total `fdatasync` calls issued (the group-commit tests and the
    /// bench read this to prove windows actually coalesce).
    syncs: AtomicU64,
    /// Fault injection: the next N syncs fail without reaching the
    /// disk (tests manufacture failing-fdatasync windows with it).
    sync_faults: AtomicU64,
    /// Virtual stream offset of the first byte of the current segment
    /// set. The replication cursor addresses the log as one append-only
    /// virtual byte stream; compaction rewrites history, so it bumps
    /// this base *past* every previously handed-out offset
    /// (`old end + 1`) and stale followers re-bootstrap from the
    /// snapshot. Written only under the writer lock; read lock-free.
    repl_base: AtomicU64,
    /// Semi-sync fast path: [`ReplicationOptions::min_acks`]. Zero
    /// (the default) keeps the mutation path free of any replication
    /// bookkeeping.
    repl_min_acks: AtomicU64,
    /// Per-follower acknowledged virtual offsets plus the semi-sync
    /// configuration; guarded last in the lock order (never held while
    /// taking `writer` or `commit`).
    repl: Mutex<ReplAcks>,
    /// Wakes semi-sync waiters when a follower's ack advances (or the
    /// log poisons).
    repl_cv: Condvar,
    /// Held (OS advisory lock on the `LOCK` file) for the log's whole
    /// lifetime: two processes appending to one active segment would
    /// interleave frame bytes and destroy the log, so a second open of
    /// the same directory must fail fast instead. Released by the OS
    /// when the file closes — a crashed owner never wedges the dir.
    _dir_lock: File,
    /// The owning server's metrics registry, installed once when the
    /// log is wrapped into a [`crate::server::Server`]. Empty (bare
    /// `DurableLog` tests) or disabled, every hook is a no-op.
    telemetry: OnceLock<Arc<Telemetry>>,
}

/// How many followers must confirm a mutation before the primary acks
/// it — the semi-sync replication contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicationOptions {
    /// Followers that must have durably appended (fdatasync'd) a
    /// mutation's record before the primary acknowledges it. `0` (the
    /// default) is plain asynchronous replication: followers tail at
    /// their own pace and acks ride the local group-commit barrier
    /// alone.
    pub min_acks: usize,
    /// Upper bound on waiting for follower acks. A primary whose
    /// followers died would otherwise block mutations forever; past
    /// the timeout it *degrades to asynchronous* for that mutation
    /// (acking on local durability alone, like MySQL semi-sync) and
    /// counts the event in [`DurableLog::semi_sync_degraded`] so
    /// operators can see the guarantee lapsed.
    pub ack_timeout: std::time::Duration,
}

impl Default for ReplicationOptions {
    fn default() -> Self {
        ReplicationOptions {
            min_acks: 0,
            ack_timeout: std::time::Duration::from_secs(10),
        }
    }
}

/// Follower-ack state behind [`DurableLog::repl`].
struct ReplAcks {
    /// Highest virtual offset each follower has durably applied,
    /// keyed by its self-chosen id. A pull at offset `v` *is* the ack
    /// for every byte below `v`.
    acks: BTreeMap<u64, u64>,
    /// Companion to the atomic fast path; authoritative value.
    options: ReplicationOptions,
    /// Mutations acked after the semi-sync timeout expired (the
    /// guarantee degraded to async for them).
    degraded: u64,
}

/// One served replication pull: either the next run of verbatim
/// record bytes, or a restart-from-snapshot when the follower's offset
/// fell off the primary's compaction horizon.
pub(crate) enum ReplRead {
    /// Records at exactly the requested offset.
    Records { records: Vec<u8>, next_offset: u64 },
    /// The follower must reset: the stream restarts at `base`.
    Snapshot {
        base: u64,
        records: Vec<u8>,
        next_offset: u64,
    },
}

/// What [`DurableLog::scrub`] verified.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Segments whose records all verified (sealed + active).
    pub segments: usize,
    /// Total records checksum-verified.
    pub records: u64,
    /// Total record-stream bytes verified.
    pub bytes: u64,
}

fn io_err(context: &str, e: &std::io::Error) -> PhError {
    PhError::Durability(format!("{context}: {e}"))
}

pub(crate) fn segment_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("seg-{id:08}.log"))
}

fn checksum(body: &[u8]) -> [u8; CHECKSUM_LEN] {
    let digest = Sha256::digest(body);
    let mut out = [0u8; CHECKSUM_LEN];
    out.copy_from_slice(&digest[..CHECKSUM_LEN]);
    out
}

/// Opens the directory itself and fsyncs it, making freshly created /
/// renamed / removed directory entries durable.
pub(crate) fn sync_dir(dir: &Path) -> Result<(), PhError> {
    File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(|e| io_err("fsync data dir", &e))
}

pub(crate) fn write_manifest(dir: &Path, segments: &[u64]) -> Result<(), PhError> {
    let mut body = Vec::with_capacity(16 + 8 * segments.len());
    body.extend_from_slice(MANIFEST_MAGIC);
    MANIFEST_VERSION.encode(&mut body);
    segments.len().encode(&mut body);
    for id in segments {
        id.encode(&mut body);
    }
    let digest = Sha256::digest(&body);
    body.extend_from_slice(&digest);

    let tmp = dir.join(MANIFEST_TMP);
    let mut file = File::create(&tmp).map_err(|e| io_err("create manifest tmp", &e))?;
    file.write_all(&body)
        .and_then(|()| file.sync_all())
        .map_err(|e| io_err("write manifest tmp", &e))?;
    fs::rename(&tmp, dir.join(MANIFEST)).map_err(|e| io_err("install manifest", &e))?;
    sync_dir(dir)
}

fn read_manifest(dir: &Path) -> Result<Vec<u64>, PhError> {
    const DIGEST: usize = 32;
    let bytes = fs::read(dir.join(MANIFEST)).map_err(|e| io_err("read manifest", &e))?;
    if bytes.len() < MANIFEST_MAGIC.len() + 2 + DIGEST {
        return Err(PhError::Durability("manifest too short".into()));
    }
    let (body, sum) = bytes.split_at(bytes.len() - DIGEST);
    if Sha256::digest(body) != *sum {
        return Err(PhError::Durability("manifest checksum mismatch".into()));
    }
    let mut r = Reader::new(body);
    if r.take(MANIFEST_MAGIC.len()).map_err(wire_to_durability)? != MANIFEST_MAGIC {
        return Err(PhError::Durability("bad manifest magic".into()));
    }
    let version = u16::decode(&mut r).map_err(wire_to_durability)?;
    if version != MANIFEST_VERSION {
        return Err(PhError::Durability(format!(
            "unsupported manifest version {version}"
        )));
    }
    let count = usize::decode(&mut r).map_err(wire_to_durability)?;
    if count == 0 || count.saturating_mul(8) > r.remaining() {
        return Err(PhError::Durability(
            "implausible manifest entry count".into(),
        ));
    }
    let mut segments = Vec::with_capacity(count);
    for _ in 0..count {
        segments.push(u64::decode(&mut r).map_err(wire_to_durability)?);
    }
    r.expect_end().map_err(wire_to_durability)?;
    Ok(segments)
}

/// A checksum-valid record that fails to decode is corruption *inside*
/// verified bytes — a format bug or targeted tampering, not a torn
/// tail — so it surfaces as a durability error, never a truncation.
fn wire_to_durability(e: PhError) -> PhError {
    PhError::Durability(format!("corrupt record: {e}"))
}

/// Decodes a wire `Vec<(u64, Vec<CipherWord>)>` document list straight
/// into `arena` — word bytes go from the record buffer into the
/// columnar slots without a boxed document in between. Returns the
/// last document id, if any.
fn decode_docs_into(r: &mut Reader<'_>, arena: &mut WordArena) -> Result<Option<u64>, PhError> {
    let count = usize::decode(r)?;
    if count > r.remaining() {
        return Err(PhError::Wire(format!(
            "doc count {count} exceeds remaining input"
        )));
    }
    let mut last = None;
    for _ in 0..count {
        let doc_id = u64::decode(r)?;
        let words = usize::decode(r)?;
        if words > r.remaining() {
            return Err(PhError::Wire(format!(
                "word count {words} exceeds remaining input"
            )));
        }
        for _ in 0..words {
            let len = usize::decode(r)?;
            arena.push_word(r.take(len)?);
        }
        arena.seal_doc(doc_id);
        last = Some(doc_id);
    }
    Ok(last)
}

/// Replays one mutation-record body (a raw client message) onto the
/// recovery state. Mutations were validated when first applied, so
/// replay trusts the log — an inconsistent record (append to a table
/// the log never created) is corruption, not a user error.
fn replay_mutation(
    body: &[u8],
    tables: &mut BTreeMap<String, RecoveredTable>,
    dedup: &mut RecoveredDedup,
) -> Result<(), PhError> {
    let mut r = Reader::new(body);
    let message_tag = u8::decode(&mut r)?;
    if message_tag == tag::TAGGED {
        // An idempotent envelope: note the request id, then replay the
        // inner message. Only applied mutations were logged, so every
        // id seen here acked a success — the rebuilt window caches the
        // same `Ok` the live server returned.
        let client_id = u64::decode(&mut r)?;
        let seq = u64::decode(&mut r)?;
        let inner = r.take(r.remaining())?;
        if inner.first() == Some(&tag::TAGGED) {
            return Err(PhError::Durability("nested envelope in log".into()));
        }
        replay_mutation(inner, tables, dedup)?;
        dedup.events.push(DedupEvent::Applied { client_id, seq });
        return Ok(());
    }
    let name = String::decode(&mut r)?;
    fn known<'t>(
        tables: &'t mut BTreeMap<String, RecoveredTable>,
        name: &str,
    ) -> Result<&'t mut RecoveredTable, PhError> {
        tables
            .get_mut(name)
            .ok_or_else(|| PhError::Durability(format!("log mutates unknown table {name}")))
    }
    match message_tag {
        tag::CREATE => {
            let params = SwpParams::decode(&mut r)?;
            let mut arena = WordArena::new(params.word_len);
            decode_docs_into(&mut r, &mut arena)?;
            let next_doc_id = u64::decode(&mut r)?;
            r.expect_end()?;
            tables.insert(
                name.clone(),
                RecoveredTable {
                    name,
                    params,
                    arena,
                    next_doc_id,
                },
            );
        }
        tag::APPEND => {
            let doc_id = u64::decode(&mut r)?;
            let table = known(tables, &name)?;
            let words = usize::decode(&mut r)?;
            for _ in 0..words {
                let len = usize::decode(&mut r)?;
                table.arena.push_word(r.take(len)?);
            }
            table.arena.seal_doc(doc_id);
            table.next_doc_id = doc_id + 1;
            r.expect_end()?;
        }
        tag::APPEND_BATCH => {
            let table = known(tables, &name)?;
            if let Some(last) = decode_docs_into(&mut r, &mut table.arena)? {
                table.next_doc_id = last + 1;
            }
            r.expect_end()?;
        }
        tag::DELETE => {
            let doc_ids = Vec::<u64>::decode(&mut r)?;
            r.expect_end()?;
            let victims: std::collections::BTreeSet<u64> = doc_ids.into_iter().collect();
            known(tables, &name)?
                .arena
                .retain(|id| !victims.contains(&id));
        }
        tag::DROP => {
            r.expect_end()?;
            tables.remove(&name);
        }
        t => {
            return Err(PhError::Durability(format!(
                "non-mutation message tag {t} in log"
            )))
        }
    }
    Ok(())
}

/// Replays one snapshot-record body: a bounded chunk of one table's
/// documents, appended in chunk order.
fn replay_snapshot(
    body: &[u8],
    tables: &mut BTreeMap<String, RecoveredTable>,
) -> Result<(), PhError> {
    let mut r = Reader::new(body);
    let name = String::decode(&mut r)?;
    let params = SwpParams::decode(&mut r)?;
    let next_doc_id = u64::decode(&mut r)?;
    let table = tables
        .entry(name.clone())
        .or_insert_with(|| RecoveredTable {
            name,
            params,
            arena: WordArena::new(params.word_len),
            next_doc_id,
        });
    decode_docs_into(&mut r, &mut table.arena)?;
    table.next_doc_id = next_doc_id;
    r.expect_end()?;
    Ok(())
}

/// Replays one dedup-record body: the window image a compaction cut
/// persisted, `Vec<(client_id, (watermark, applied seqs))>`.
fn replay_dedup(body: &[u8], dedup: &mut RecoveredDedup) -> Result<(), PhError> {
    let mut r = Reader::new(body);
    let image = Vec::<(u64, (u64, Vec<u64>))>::decode(&mut r)?;
    r.expect_end()?;
    for (client_id, (watermark, seqs)) in image {
        dedup.events.push(DedupEvent::Snapshot {
            client_id,
            watermark,
            seqs,
        });
    }
    Ok(())
}

/// Replays one index-record body: the multimap image a compaction cut
/// persisted, `Vec<(table, Vec<(label, (bound, posting ids))>)>`.
fn replay_index(body: &[u8], index: &mut RecoveredIndex) -> Result<(), PhError> {
    let mut r = Reader::new(body);
    let image = IndexImageWire::decode(&mut r)?;
    r.expect_end()?;
    for (name, postings) in image {
        let mut entries = Vec::with_capacity(postings.len());
        for (label, (bound, doc_ids)) in postings {
            let label: dbph_swp::IndexLabel = label
                .try_into()
                .map_err(|_| PhError::Durability("index record label is not 32 bytes".into()))?;
            entries.push((label, Posting { doc_ids, bound }));
        }
        index.image.push((name, entries));
    }
    Ok(())
}

/// How a segment replay ended.
enum SegmentEnd {
    /// Every byte consumed as complete, checksum-valid records.
    Clean,
    /// The tail after `good_bytes` is torn: an incomplete frame or a
    /// record whose checksum does not verify.
    Torn {
        /// Length of the clean record prefix.
        good_bytes: u64,
    },
}

/// Length of the longest whole-record-frame prefix of `bytes` (frames
/// are a `u32`-LE length followed by that many payload bytes).
/// Boundary math only — checksum verification is the receiver's job.
fn records_prefix(bytes: &[u8]) -> u64 {
    let mut pos = 0usize;
    while bytes.len() - pos >= 4 {
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        if len > MAX_RECORD || bytes.len() - pos - 4 < len {
            break;
        }
        pos += 4 + len;
    }
    pos as u64
}

/// Walks `bytes` as a record stream verifying framing and checksums —
/// without replaying anything — and reports `(records, clean_bytes)`:
/// how many records verified and how far the clean prefix extends.
/// `clean_bytes == bytes.len()` means every byte verified.
pub(crate) fn verify_records(bytes: &[u8]) -> (u64, u64) {
    let mut cursor = Cursor::new(bytes);
    let mut records = 0u64;
    let mut good = 0u64;
    loop {
        let payload = match codec::read_frame_capped(&mut cursor, MAX_RECORD) {
            Ok(None) => return (records, good),
            Ok(Some(payload)) => payload,
            Err(_) => return (records, good),
        };
        if payload.len() <= CHECKSUM_LEN {
            return (records, good);
        }
        let (body, sum) = payload.split_at(payload.len() - CHECKSUM_LEN);
        if checksum(body) != *sum {
            return (records, good);
        }
        records += 1;
        good = cursor.position();
    }
}

/// Replays every complete record of `bytes`, reporting where (and
/// whether cleanly) the segment ended. Never panics on any input.
fn replay_segment(
    bytes: &[u8],
    tables: &mut BTreeMap<String, RecoveredTable>,
    dedup: &mut RecoveredDedup,
    index: &mut RecoveredIndex,
) -> Result<SegmentEnd, PhError> {
    let mut cursor = Cursor::new(bytes);
    let mut good: u64 = 0;
    loop {
        let payload = match codec::read_frame_capped(&mut cursor, MAX_RECORD) {
            Ok(None) => return Ok(SegmentEnd::Clean),
            Ok(Some(payload)) => payload,
            // Mid-frame EOF (or an implausible length prefix): the
            // torn tail a crash leaves behind.
            Err(_) => return Ok(SegmentEnd::Torn { good_bytes: good }),
        };
        if payload.len() <= CHECKSUM_LEN {
            return Ok(SegmentEnd::Torn { good_bytes: good });
        }
        let (body, sum) = payload.split_at(payload.len() - CHECKSUM_LEN);
        if checksum(body) != *sum {
            return Ok(SegmentEnd::Torn { good_bytes: good });
        }
        let (record_tag, record) = (body[0], &body[1..]);
        match record_tag {
            TAG_MUTATION => replay_mutation(record, tables, dedup)?,
            TAG_SNAPSHOT => replay_snapshot(record, tables)?,
            TAG_DEDUP => replay_dedup(record, dedup)?,
            TAG_INDEX => replay_index(record, index)?,
            t => return Err(PhError::Durability(format!("unknown record tag {t}"))),
        }
        good = cursor.position();
    }
}

impl DurableLog {
    /// Opens (or initializes) the log under `dir` and recovers the
    /// store state it describes: replays the manifest's segments in
    /// order, truncates a torn tail record in the active segment, and
    /// returns the rebuilt tables in columnar form. Stray segment
    /// files a crash-interrupted compaction left outside the manifest
    /// are removed.
    ///
    /// # Errors
    /// [`PhError::Durability`] on I/O failure, a corrupt manifest, a
    /// corrupt **sealed** segment, or a checksum-valid record that
    /// does not decode. A torn active-segment tail is *not* an error.
    pub fn open(
        dir: impl AsRef<Path>,
        options: DurableOptions,
    ) -> Result<(Self, Vec<RecoveredTable>, RecoveredDedup, RecoveredIndex), PhError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| io_err("create data dir", &e))?;

        // Single-owner discipline, before any byte is read or written:
        // a second process (or a second log in this process) opening
        // the same directory would race appends into one active
        // segment and corrupt it. Advisory lock, held until drop; a
        // killed owner releases it with its file descriptors.
        let dir_lock = File::options()
            .create(true)
            .truncate(false)
            .write(true)
            .open(dir.join(LOCK))
            .map_err(|e| io_err("open lock file", &e))?;
        dir_lock.try_lock().map_err(|e| {
            PhError::Durability(format!(
                "data dir {} is locked by another live server: {e}",
                dir.display()
            ))
        })?;

        let segments = if dir.join(MANIFEST).exists() {
            read_manifest(&dir)?
        } else {
            // Fresh directory: one empty active segment, id 0. The
            // segment is created and synced *before* the manifest
            // names it, so a crash between the two leaves either no
            // manifest (fresh again) or a consistent pair.
            let seg = segment_path(&dir, 0);
            File::create(&seg)
                .and_then(|f| f.sync_all())
                .map_err(|e| io_err("create initial segment", &e))?;
            sync_dir(&dir)?;
            write_manifest(&dir, &[0])?;
            vec![0]
        };

        let mut tables = BTreeMap::new();
        let mut dedup = RecoveredDedup::default();
        let mut index = RecoveredIndex::default();
        let (&active_id, sealed_ids) = segments
            .split_last()
            .ok_or_else(|| PhError::Durability("empty manifest".into()))?;
        let mut sealed_bytes = Vec::with_capacity(sealed_ids.len());
        for &id in sealed_ids {
            let path = segment_path(&dir, id);
            let bytes = fs::read(&path).map_err(|e| io_err("read sealed segment", &e))?;
            match replay_segment(&bytes, &mut tables, &mut dedup, &mut index)? {
                SegmentEnd::Clean => {}
                SegmentEnd::Torn { good_bytes } => {
                    return Err(PhError::Durability(format!(
                        "sealed segment {id} corrupt after {good_bytes} bytes"
                    )));
                }
            }
            sealed_bytes.push(bytes.len() as u64);
        }
        let active_path = segment_path(&dir, active_id);
        let bytes = fs::read(&active_path).map_err(|e| io_err("read active segment", &e))?;
        let active_bytes = match replay_segment(&bytes, &mut tables, &mut dedup, &mut index)? {
            SegmentEnd::Clean => bytes.len() as u64,
            SegmentEnd::Torn { good_bytes } => {
                // The crash contract: drop the torn tail, keep every
                // fully persisted record. Truncate durably so the next
                // append starts on a record boundary.
                let file = File::options()
                    .write(true)
                    .open(&active_path)
                    .map_err(|e| io_err("open active segment for truncation", &e))?;
                file.set_len(good_bytes)
                    .and_then(|()| file.sync_all())
                    .map_err(|e| io_err("truncate torn tail", &e))?;
                good_bytes
            }
        };
        let active = File::options()
            .append(true)
            .open(&active_path)
            .map_err(|e| io_err("open active segment", &e))?;

        // Remove segment files the manifest does not reference — the
        // debris of a compaction that crashed before its manifest
        // swap. Safe precisely because the manifest is the sole source
        // of truth for what replays.
        if let Ok(entries) = fs::read_dir(&dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if let Some(id) = name
                    .strip_prefix("seg-")
                    .and_then(|s| s.strip_suffix(".log"))
                    .and_then(|s| s.parse::<u64>().ok())
                {
                    if !segments.contains(&id) {
                        let _ = fs::remove_file(entry.path());
                    }
                }
            }
        }

        let active = Arc::new(active);
        let log = DurableLog {
            dir,
            options,
            writer: Mutex::new(Writer {
                active: Arc::clone(&active),
                active_id,
                active_bytes,
                sealed: sealed_ids.to_vec(),
                sealed_bytes,
            }),
            commit: Mutex::new(CommitState {
                appended: 0,
                synced: 0,
                syncing: false,
                waiters: 0,
                file: active,
            }),
            commit_cv: Condvar::new(),
            poisoned: AtomicBool::new(false),
            syncs: AtomicU64::new(0),
            sync_faults: AtomicU64::new(0),
            repl_base: AtomicU64::new(0),
            repl_min_acks: AtomicU64::new(0),
            repl: Mutex::new(ReplAcks {
                acks: BTreeMap::new(),
                options: ReplicationOptions::default(),
                degraded: 0,
            }),
            repl_cv: Condvar::new(),
            _dir_lock: dir_lock,
            telemetry: OnceLock::new(),
        };
        Ok((log, tables.into_values().collect(), dedup, index))
    }

    /// The data directory this log persists into.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the current active segment file (tests watch its length
    /// to learn which records are on disk).
    #[must_use]
    pub fn active_segment_path(&self) -> PathBuf {
        segment_path(&self.dir, self.writer.lock().active_id)
    }

    /// Bytes of complete records currently in the active segment.
    #[must_use]
    pub fn active_segment_bytes(&self) -> u64 {
        self.writer.lock().active_bytes
    }

    /// Segment ids in replay order (sealed segments, then the active
    /// one).
    #[must_use]
    pub fn segments(&self) -> Vec<u64> {
        let w = self.writer.lock();
        let mut ids = w.sealed.clone();
        ids.push(w.active_id);
        ids
    }

    /// Whether a write-side failure has poisoned the log (mutations
    /// fail closed from then on).
    #[must_use]
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::SeqCst)
    }

    /// Installs the owning server's metrics registry (once; later
    /// calls are ignored — a log has exactly one owning server).
    pub(crate) fn install_telemetry(&self, telemetry: Arc<Telemetry>) {
        let _ = self.telemetry.set(telemetry);
    }

    /// The registry, when installed *and* collecting — the single
    /// check every log-side hook performs.
    #[inline]
    fn tele(&self) -> Option<&Telemetry> {
        self.telemetry.get().map(Arc::as_ref).filter(|t| t.on())
    }

    /// Total `fdatasync` calls this log has issued. With group commit
    /// and N concurrent writers this grows ~1 per flush window, not
    /// per mutation — the coalescing the tests and bench assert.
    #[must_use]
    pub fn sync_count(&self) -> u64 {
        self.syncs.load(Ordering::SeqCst)
    }

    /// Fault injection for the crash/poison tests: the next `n` fsyncs
    /// report failure without touching the disk, so a failing
    /// `fdatasync` window can be manufactured deterministically. The
    /// failure poisons the log exactly like a real one.
    pub fn inject_sync_failures(&self, n: u64) {
        self.sync_faults.store(n, Ordering::SeqCst);
    }

    /// Poisons the log and wakes every group-commit waiter so they
    /// observe the failure instead of parking forever.
    fn poison_and_wake(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
        {
            let _guard = self.commit.lock();
            self.commit_cv.notify_all();
        }
        let _guard = self.repl.lock();
        self.repl_cv.notify_all();
    }

    /// One `fdatasync`, honoring injected faults.
    fn do_sync(&self, file: &File) -> Result<(), PhError> {
        let mut faults = self.sync_faults.load(Ordering::SeqCst);
        while faults > 0 {
            match self.sync_faults.compare_exchange(
                faults,
                faults - 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => {
                    return Err(PhError::Durability(
                        "fsync failed (injected fault): record not durable".into(),
                    ))
                }
                Err(now) => faults = now,
            }
        }
        self.syncs.fetch_add(1, Ordering::SeqCst);
        match self.tele() {
            Some(t) => {
                let t0 = Instant::now();
                let result = file.sync_data();
                t.fsync_nanos.record_duration(t0.elapsed());
                result
            }
            None => file.sync_data(),
        }
        .map_err(|e| io_err("fsync record", &e))
    }

    /// Blocks until record `seq` is durable (acked) or the log poisons
    /// (failed closed). Implements the shared barrier: the first
    /// waiter to find no sync in flight becomes the *leader*, waits
    /// out the flush window (letting more writers append and queue),
    /// fsyncs once on behalf of every record appended by then, and
    /// wakes all of them; later waiters either find their record
    /// already covered or lead the next window.
    fn wait_durable(&self, seq: u64) -> Result<(), PhError> {
        let barrier_t0 = self.tele().map(|_| Instant::now());
        let mut c = self.commit.lock();
        c.waiters += 1;
        loop {
            if c.synced >= seq {
                c.waiters -= 1;
                if let (Some(t0), Some(t)) = (barrier_t0, self.tele()) {
                    t.commit_wait_nanos.record_duration(t0.elapsed());
                }
                return Ok(());
            }
            if self.is_poisoned() {
                c.waiters -= 1;
                return Err(PhError::Durability(
                    "group-commit window failed; mutation not durable".into(),
                ));
            }
            if c.syncing {
                self.commit_cv.wait(&mut c);
                continue;
            }
            // Become the leader for this window. A *serial* leader —
            // sole waiter, own record at the append high-water mark —
            // has nobody to coalesce with: waiting out a positive
            // flush window would add its full duration to every
            // mutation's latency for zero batching benefit, so it
            // syncs immediately. (Records land in the file before
            // their barrier seq is claimed, so the post-window target
            // read below still covers any writer that slips in
            // between — a race costs batching, never durability.)
            c.syncing = true;
            let serial = c.waiters == 1 && c.appended == seq;
            drop(c);
            if !self.options.flush_window.is_zero() {
                if !serial {
                    std::thread::sleep(self.options.flush_window);
                }
            } else {
                // Even with no window, give concurrently-appending
                // threads a scheduling chance to land their records
                // before the barrier target is read: the first waiter
                // into a quiet log would otherwise lead a window of
                // one and leave everyone who appended during its
                // fsync to pay a second barrier. Yield until the
                // high-water mark stops moving (bounded — each writer
                // has at most one outstanding append, so growth stops
                // once the runnable ones have landed). Timing-only —
                // a lone serial writer burns exactly one no-op yield.
                let mut mark = self.commit.lock().appended;
                for _ in 0..16 {
                    std::thread::yield_now();
                    let now = self.commit.lock().appended;
                    if now == mark {
                        break;
                    }
                    mark = now;
                }
            }
            // Read the barrier target *after* the window: everything
            // appended while we waited shares this one fsync.
            let (target, file) = {
                let c = self.commit.lock();
                (c.appended, Arc::clone(&c.file))
            };
            // Wake any follower pull parked on the stream end
            // (`repl_read`'s long poll) *now*, before the fsync: the
            // window just stabilized, so the follower ships it as one
            // chunk and runs its own append+fsync in parallel with
            // ours — semi-sync ack latency stays near one fsync, not
            // two. Shipping records whose barrier has not completed is
            // sound: the follower's copy only ever *adds* a durability
            // site, and a follower that ends up ahead of a crashed
            // primary goes stale on its first pull and re-bootstraps.
            {
                let _r = self.repl.lock();
                self.repl_cv.notify_all();
            }
            let outcome = self.do_sync(&file);
            c = self.commit.lock();
            c.syncing = false;
            match outcome {
                Ok(()) => {
                    // `synced` may already exceed `target` if a
                    // compaction (whose manifest swap durably covers
                    // all applied records) slid in — keep the max.
                    if let Some(t) = self.tele() {
                        // Window occupancy: records this one fsync
                        // newly covered (0 when a compaction already
                        // durably covered the whole window).
                        t.commit_window_records
                            .record(target.saturating_sub(c.synced));
                    }
                    c.synced = c.synced.max(target);
                    self.commit_cv.notify_all();
                }
                Err(e) => {
                    // The window failed: every waiter in it (and any
                    // record appended since) must fail closed, not be
                    // acked by some later successful sync.
                    c.waiters -= 1;
                    self.poisoned.store(true, Ordering::SeqCst);
                    self.commit_cv.notify_all();
                    return Err(e);
                }
            }
        }
    }

    /// Runs `apply` (the store mutation) under the log's writer lock
    /// and, when it reports the store changed, appends `message_bytes`
    /// as one record — compacting first if the active segment has
    /// outgrown its threshold — then makes the record durable before
    /// returning: under group commit by waiting on the shared
    /// `fdatasync` barrier ([`Self::wait_durable`], outside the writer
    /// lock so other sessions keep appending into the same window),
    /// otherwise with an immediate per-mutation fsync. Holding the
    /// lock across apply *and* append is what keeps the log's record
    /// order identical to the store's apply order under concurrent
    /// sessions; without it two racing appends could persist in the
    /// opposite order they validated in, and replay would diverge.
    ///
    /// # Errors
    /// [`PhError::Durability`] when the log is poisoned or the record
    /// write/fsync fails (which poisons it — for a shared barrier
    /// failure, for *every* waiter in the window). On error the
    /// in-memory apply may already have happened — the server reports
    /// the error to the client and refuses further mutations, so an
    /// un-persisted change is never silently acknowledged.
    pub(crate) fn log_mutation<R>(
        &self,
        message_bytes: &[u8],
        store: &TableStore,
        apply: impl FnOnce() -> (R, bool),
    ) -> Result<R, PhError> {
        let my_seq;
        let result;
        let repl_end;
        {
            let mut w = self.writer.lock();
            // Check the poison flag *under* the lock: a mutation that
            // was blocked on the lock while another thread's append
            // failed must observe the failure, not apply-and-append
            // after the torn bytes (recovery would truncate its
            // acknowledged record away with the tail).
            if self.is_poisoned() {
                return Err(PhError::Durability(
                    "log poisoned by an earlier write failure; mutations disabled".into(),
                ));
            }
            let (r, mutated) = apply();
            result = r;
            if !mutated {
                return Ok(result);
            }
            if let Err(e) = self.append_record(&mut w, TAG_MUTATION, message_bytes) {
                self.poison_and_wake();
                return Err(e);
            }
            // The record's end position in the virtual replication
            // stream: a follower ack at or beyond it means this exact
            // record is durable on that follower. Captured under the
            // writer lock (before any compaction below — offsets are
            // monotone across compaction, so a later ack still
            // satisfies the wait), consumed after local durability.
            repl_end = if self.repl_min_acks.load(Ordering::SeqCst) > 0 {
                Some(
                    self.repl_base.load(Ordering::SeqCst)
                        + w.sealed_bytes.iter().sum::<u64>()
                        + w.active_bytes,
                )
            } else {
                None
            };
            if self.options.group_commit {
                // Claim this record's barrier sequence number; the
                // fsync itself happens outside the writer lock.
                let mut c = self.commit.lock();
                c.appended += 1;
                my_seq = Some(c.appended);
            } else {
                my_seq = None;
                if let Err(e) = self.do_sync(&w.active) {
                    self.poison_and_wake();
                    return Err(e);
                }
                // Keep the barrier bookkeeping coherent even though
                // nobody waits on it in this mode.
                let mut c = self.commit.lock();
                c.appended += 1;
                c.synced = c.appended;
                drop(c);
                // Wake long-polled follower pulls: a new, already
                // durable record is readable. (Under group commit the
                // barrier leader wakes them instead, once per window.)
                let _r = self.repl.lock();
                self.repl_cv.notify_all();
            }
            if w.active_bytes >= self.options.compact_threshold {
                if let Err(e) = self.compact_locked(&mut w, store) {
                    self.poison_and_wake();
                    return Err(e);
                }
            }
        }
        if let Some(seq) = my_seq {
            self.wait_durable(seq)?;
        }
        if let Some(end) = repl_end {
            self.wait_replicated(end)?;
        }
        Ok(result)
    }

    /// Compacts immediately, regardless of the threshold — the bench
    /// and the recovery tests use this to manufacture
    /// snapshot-segment-only data directories.
    ///
    /// # Errors
    /// As the write path; a failure poisons the log.
    pub fn compact_now(&self, store: &TableStore) -> Result<(), PhError> {
        let mut w = self.writer.lock();
        // Same flag discipline as `log_mutation`: observe under the
        // lock, never alongside it.
        if self.is_poisoned() {
            return Err(PhError::Durability("log poisoned; cannot compact".into()));
        }
        self.compact_locked(&mut w, store).inspect_err(|_| {
            self.poisoned.store(true, Ordering::SeqCst);
        })
    }

    /// Installs (or changes) the semi-sync replication contract. With
    /// `min_acks == 0` the write path is untouched; with `min_acks > 0`
    /// every mutation blocks, after its local durability barrier, until
    /// that many followers have acknowledged the record (or the
    /// configured timeout degrades the ack to async).
    pub fn set_replication(&self, options: ReplicationOptions) {
        let mut r = self.repl.lock();
        self.repl_min_acks
            .store(options.min_acks as u64, Ordering::SeqCst);
        r.options = options;
        // A relaxed contract may already be satisfied for parked
        // waiters; let them re-check.
        self.repl_cv.notify_all();
    }

    /// Mutations whose semi-sync wait timed out and were acked on
    /// local durability alone — each one is a lapse of the
    /// "acked ⇒ on a follower" guarantee that operators should see.
    #[must_use]
    pub fn semi_sync_degraded(&self) -> u64 {
        self.repl.lock().degraded
    }

    /// Replication lag in virtual-stream bytes: the gap between this
    /// log's stream end and the slowest registered follower's
    /// acknowledged offset. Zero with no followers.
    #[must_use]
    pub fn replication_lag(&self) -> u64 {
        let end = {
            let w = self.writer.lock();
            self.repl_base.load(Ordering::SeqCst)
                + w.sealed_bytes.iter().sum::<u64>()
                + w.active_bytes
        };
        let r = self.repl.lock();
        r.acks
            .values()
            .map(|&v| end.saturating_sub(v))
            .max()
            .unwrap_or(0)
    }

    /// Blocks until `min_acks` followers have acknowledged offsets at
    /// or beyond `end_offset`, the timeout degrades the ack to async,
    /// or the log poisons.
    fn wait_replicated(&self, end_offset: u64) -> Result<(), PhError> {
        let deadline = std::time::Instant::now() + {
            let r = self.repl.lock();
            r.options.ack_timeout
        };
        let mut r = self.repl.lock();
        loop {
            let need = r.options.min_acks;
            if need == 0 {
                return Ok(());
            }
            if r.acks.values().filter(|&&v| v >= end_offset).count() >= need {
                return Ok(());
            }
            if self.is_poisoned() {
                return Err(PhError::Durability(
                    "log poisoned while awaiting follower acks".into(),
                ));
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                // Followers are gone or unreachable. Refusing the
                // mutation here would be worse: it is already applied
                // and locally durable, so an error would teach the
                // client to re-send an envelope the dedup window must
                // then replay — all cost, no safety. Degrade to async
                // (the MySQL semi-sync escape hatch) and count it.
                r.degraded += 1;
                return Ok(());
            }
            let _ = self.repl_cv.wait_for(&mut r, deadline - now);
        }
    }

    /// Serves one follower pull: records from `after_offset` onward
    /// ([`ReplRead::Records`]), or a restart-from-snapshot
    /// ([`ReplRead::Snapshot`]) when that offset predates the
    /// compaction horizon or lies beyond the stream end. The pull
    /// doubles as the follower's ack for every byte below
    /// `after_offset`. Chunks are cut at record boundaries and capped
    /// near [`REPL_CHUNK_BYTES`] (a single larger record ships whole).
    ///
    /// A pull that finds the follower already caught up *long-polls*:
    /// it parks (off the writer lock) until an append or compaction
    /// wakes it, up to [`REPL_POLL_WAIT`], and only then answers
    /// empty. Appends notify at append time — before their barrier
    /// fsync — so a tailing follower's own append+fsync runs in
    /// parallel with the primary's, which is what keeps semi-sync
    /// ack latency near one fsync instead of two. The parked pull
    /// occupies its serving thread; point the replication link at the
    /// default thread-per-connection front-end, not the shared event
    /// loop.
    ///
    /// Holds the writer lock across the file reads: appends and
    /// compactions stall for the duration of one bounded chunk read,
    /// in exchange for an immutable view of the segment set.
    pub(crate) fn repl_read(&self, follower: u64, after_offset: u64) -> Result<ReplRead, PhError> {
        let deadline = std::time::Instant::now() + REPL_POLL_WAIT;
        let (w, base, total, stale) = loop {
            let w = self.writer.lock();
            let base = self.repl_base.load(Ordering::SeqCst);
            let total: u64 = w.sealed_bytes.iter().sum::<u64>() + w.active_bytes;
            let end = base + total;
            let stale = after_offset < base || after_offset > end;
            {
                let mut r = self.repl.lock();
                let slot = r.acks.entry(follower).or_insert(0);
                if stale {
                    // The follower is about to reset; whatever it holds
                    // at those offsets is not this stream's content.
                    *slot = 0;
                } else if *slot < after_offset {
                    *slot = after_offset;
                    self.repl_cv.notify_all();
                }
            }
            if stale || after_offset < end {
                break (w, base, total, stale);
            }
            // Caught up. Park until something lands or the poll budget
            // runs out — never on a poisoned log (the follower should
            // hear "nothing" promptly and keep probing; promotion may
            // be next).
            let now = std::time::Instant::now();
            if self.is_poisoned() || now >= deadline {
                return Ok(ReplRead::Records {
                    records: Vec::new(),
                    next_offset: after_offset,
                });
            }
            // Lock order writer → repl, and take the repl lock *before*
            // releasing the writer lock: appenders notify under the
            // repl lock while holding the writer lock, so a record
            // landing between our end-read and the park cannot slip
            // its wakeup past us.
            if let Some(t) = self.tele() {
                t.repl_longpoll_parks.inc();
            }
            let mut r = self.repl.lock();
            drop(w);
            let _ = self.repl_cv.wait_for(&mut r, deadline - now);
        };
        let start = if stale { 0 } else { after_offset - base };
        let avail = total - start;
        let want = avail.min(REPL_CHUNK_BYTES);
        let mut records = self.read_stream_range(&w, start, want)?;
        let mut keep = records_prefix(&records);
        if keep == 0 && avail > 4 {
            // The record at `start` is larger than the chunk budget:
            // read its header, then ship exactly that one record.
            let header = self.read_stream_range(&w, start, 4)?;
            let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as u64;
            let need = (4 + len).min(avail);
            records = self.read_stream_range(&w, start, need)?;
            keep = records_prefix(&records);
            if keep == 0 {
                return Err(PhError::Durability(format!(
                    "replication cursor desynchronized at offset {after_offset}"
                )));
            }
        }
        records.truncate(usize::try_from(keep).unwrap_or(usize::MAX));
        if let Some(t) = self.tele() {
            t.repl_chunks_shipped.inc();
            t.repl_bytes_shipped.add(keep);
        }
        if stale {
            Ok(ReplRead::Snapshot {
                base,
                next_offset: base + keep,
                records,
            })
        } else {
            Ok(ReplRead::Records {
                next_offset: after_offset + keep,
                records,
            })
        }
    }

    /// Reads raw bytes `[start, start + len)` of the physical record
    /// stream (sealed segments in manifest order, then the active
    /// segment's record prefix). Caller holds the writer lock, so the
    /// segment set and every length are stable.
    fn read_stream_range(&self, w: &Writer, start: u64, len: u64) -> Result<Vec<u8>, PhError> {
        use std::io::{Read as _, Seek as _, SeekFrom};
        let mut out = Vec::with_capacity(usize::try_from(len).unwrap_or(0));
        let mut pos = start;
        let end = start + len;
        let mut cum = 0u64;
        let segs = w
            .sealed
            .iter()
            .copied()
            .zip(w.sealed_bytes.iter().copied())
            .chain(std::iter::once((w.active_id, w.active_bytes)));
        for (id, seg_len) in segs {
            let seg_start = cum;
            cum += seg_len;
            if cum <= pos {
                continue;
            }
            if pos >= end {
                break;
            }
            let off = pos - seg_start;
            let take = usize::try_from(cum.min(end) - pos)
                .map_err(|_| PhError::Durability("stream read too large".into()))?;
            let mut file = File::open(segment_path(&self.dir, id))
                .map_err(|e| io_err("open segment for replication", &e))?;
            file.seek(SeekFrom::Start(off))
                .map_err(|e| io_err("seek segment for replication", &e))?;
            let at = out.len();
            out.resize(at + take, 0);
            file.read_exact(&mut out[at..])
                .map_err(|e| io_err("read segment for replication", &e))?;
            pos += take as u64;
        }
        if pos != end {
            return Err(PhError::Durability(format!(
                "short replication stream read: wanted [{start}, {end}), got {pos}"
            )));
        }
        Ok(out)
    }

    /// Proactively re-verifies every record checksum in every segment
    /// — sealed segments *and* the active segment's record prefix —
    /// without replaying or mutating anything. Detects at-rest
    /// corruption (bit rot, tampering) that today would otherwise
    /// surface only at the next open. Holds the writer lock, so the
    /// scan sees a stable segment set; mutations stall for the
    /// duration.
    ///
    /// # Errors
    /// [`PhError::Durability`] naming the corrupt segment and the byte
    /// offset of the first bad record. A scrub failure does *not*
    /// poison the log: the damage predates it and the recovery path,
    /// not the scrubber, owns the decision of what is servable.
    pub fn scrub(&self) -> Result<ScrubReport, PhError> {
        let w = self.writer.lock();
        let mut report = ScrubReport::default();
        let segs = w
            .sealed
            .iter()
            .copied()
            .zip(w.sealed_bytes.iter().copied())
            .chain(std::iter::once((w.active_id, w.active_bytes)));
        for (id, seg_len) in segs {
            let bytes = fs::read(segment_path(&self.dir, id))
                .map_err(|e| io_err("read segment for scrub", &e))?;
            let len = usize::try_from(seg_len)
                .map_err(|_| PhError::Durability("segment too large to scrub".into()))?;
            let bytes = bytes.get(..len).ok_or_else(|| {
                PhError::Durability(format!(
                    "segment {id} shorter than its record prefix ({} < {seg_len} bytes)",
                    bytes.len()
                ))
            })?;
            let (records, good) = verify_records(bytes);
            if good != seg_len {
                return Err(PhError::Durability(format!(
                    "segment {id} corrupt: first bad record at byte {good} of {seg_len}"
                )));
            }
            report.segments += 1;
            report.records += records;
            report.bytes += good;
        }
        Ok(report)
    }

    /// Appends one checksummed record (`tag` + `body`) to the active
    /// segment. The bytes hit the file (in apply order, under the
    /// writer lock) but are *not* yet durable — the caller makes them
    /// so, per mutation or through the shared commit barrier.
    fn append_record(&self, w: &mut Writer, record_tag: u8, body: &[u8]) -> Result<(), PhError> {
        let mut payload = Vec::with_capacity(1 + body.len() + CHECKSUM_LEN);
        payload.push(record_tag);
        payload.extend_from_slice(body);
        let sum = checksum(&payload);
        payload.extend_from_slice(&sum);
        codec::write_frame_capped(&mut w.active.as_ref(), &payload, MAX_RECORD)
            .map_err(|e| PhError::Durability(format!("append record: {e}")))?;
        w.active_bytes += (4 + payload.len()) as u64;
        Ok(())
    }

    /// Appends a chunk of already-framed, already-checksummed records
    /// *verbatim* to the active segment and fsyncs once — the
    /// follower's tailing write. The caller (the replica) has verified
    /// the chunk with [`verify_records`]; writing the primary's bytes
    /// unmodified is what makes the follower's log a byte substring of
    /// the primary's stream, so recovery/promote replay exactly what
    /// the primary logged. One `fdatasync` covers the whole chunk:
    /// per-record syncs would cost the follower ~`records`× the
    /// primary's group-commit rate and stall semi-sync acks behind it.
    ///
    /// # Errors
    /// [`PhError::Durability`] when the log is poisoned or the
    /// write/fsync fails (which poisons it).
    pub(crate) fn append_raw(&self, records: &[u8]) -> Result<(), PhError> {
        let mut w = self.writer.lock();
        if self.is_poisoned() {
            return Err(PhError::Durability(
                "log is poisoned; raw append refused".into(),
            ));
        }
        let outcome = w
            .active
            .as_ref()
            .write_all(records)
            .map_err(|e| io_err("append raw records", &e))
            .and_then(|()| self.do_sync(&w.active));
        if let Err(e) = outcome {
            drop(w);
            self.poison_and_wake();
            return Err(e);
        }
        w.active_bytes += records.len() as u64;
        // Keep the group-commit barrier coherent for a later
        // `promote()`: these records are durable the moment this
        // returns, so the barrier counters advance together and the
        // first post-promotion mutation starts a fresh window.
        let mut c = self.commit.lock();
        c.appended += 1;
        c.synced = c.appended;
        Ok(())
    }

    /// Rewrites the live store as a sealed snapshot segment plus a
    /// fresh empty active segment, swaps the manifest to exactly those
    /// two, and deletes the superseded segment files.
    ///
    /// Crash-safe by ordering: the new segments are fully written and
    /// fsync'd *before* the manifest rename commits to them; a crash
    /// at any earlier point leaves the old manifest pointing at the
    /// old, untouched segments (the orphaned new files are swept on
    /// the next open).
    fn compact_locked(&self, w: &mut Writer, store: &TableStore) -> Result<(), PhError> {
        let snapshot_id = w.active_id + 1;
        let new_active_id = w.active_id + 2;

        // 1. The sealed snapshot segment, straight from the arenas.
        let snapshot_path = segment_path(&self.dir, snapshot_id);
        let mut snapshot_file =
            File::create(&snapshot_path).map_err(|e| io_err("create snapshot segment", &e))?;
        for (name, table) in store.snapshot_all() {
            self.write_table_snapshot(&mut snapshot_file, &name, &table)?;
        }
        // The dedup window rides along: compaction is about to delete
        // the raw mutation records it would otherwise be rebuilt from.
        // Skipped when empty (untagged workloads), so segment bytes
        // for envelope-free sessions are unchanged from PR 6.
        let dedup_image: Vec<(u64, (u64, Vec<u64>))> = store
            .dedup()
            .snapshot()
            .into_iter()
            .map(|(client_id, watermark, seqs)| (client_id, (watermark, seqs)))
            .collect();
        if !dedup_image.is_empty() {
            let mut payload = Vec::new();
            payload.push(TAG_DEDUP);
            dedup_image.encode(&mut payload);
            let sum = checksum(&payload);
            payload.extend_from_slice(&sum);
            codec::write_frame_capped(&mut snapshot_file, &payload, MAX_RECORD)
                .map_err(|e| PhError::Durability(format!("write dedup record: {e}")))?;
        }
        // The encrypted-multimap image rides along for the same
        // reason. Skipped when the index is off (or has no postings),
        // so scan-only segment bytes are unchanged from the pre-index
        // format.
        if store.index().is_enabled() {
            let index_image: IndexImageWire = store
                .index()
                .snapshot()
                .into_iter()
                .map(|(name, postings)| {
                    let postings = postings
                        .into_iter()
                        .map(|(label, posting)| (label.to_vec(), (posting.bound, posting.doc_ids)))
                        .collect();
                    (name, postings)
                })
                .collect();
            if !index_image.is_empty() {
                let mut payload = Vec::new();
                payload.push(TAG_INDEX);
                index_image.encode(&mut payload);
                let sum = checksum(&payload);
                payload.extend_from_slice(&sum);
                codec::write_frame_capped(&mut snapshot_file, &payload, MAX_RECORD)
                    .map_err(|e| PhError::Durability(format!("write index record: {e}")))?;
            }
        }
        snapshot_file
            .sync_all()
            .map_err(|e| io_err("fsync snapshot segment", &e))?;

        // 2. A fresh empty active segment.
        let active_path = segment_path(&self.dir, new_active_id);
        let new_active = File::create(&active_path)
            .and_then(|f| f.sync_all().map(|()| f))
            .map_err(|e| io_err("create active segment", &e))?;
        sync_dir(&self.dir)?;

        // 3. Commit, then sweep the superseded files.
        write_manifest(&self.dir, &[snapshot_id, new_active_id])?;
        for &old in w.sealed.iter().chain(std::iter::once(&w.active_id)) {
            let _ = fs::remove_file(segment_path(&self.dir, old));
        }

        // Compaction rewrote history: every replication offset handed
        // out so far addresses bytes that no longer exist. Bump the
        // virtual base strictly past the old stream end so *any* prior
        // follower offset (even a fully caught-up one) reads as stale
        // and the follower re-bootstraps from the snapshot segment.
        let old_end = self.repl_base.load(Ordering::SeqCst)
            + w.sealed_bytes.iter().sum::<u64>()
            + w.active_bytes;
        let snapshot_bytes = snapshot_file
            .metadata()
            .map_err(|e| io_err("stat snapshot segment", &e))?
            .len();
        self.repl_base.store(old_end + 1, Ordering::SeqCst);

        w.active = Arc::new(new_active);
        w.active_id = new_active_id;
        w.active_bytes = 0;
        w.sealed = vec![snapshot_id];
        w.sealed_bytes = vec![snapshot_bytes];

        // The snapshot captured the live store — which includes every
        // record appended so far, synced or not — and the manifest
        // swap above made it durable. Advance the commit barrier to
        // cover them all and retarget it at the fresh active segment;
        // waiters parked on the old file are already satisfied.
        {
            let mut c = self.commit.lock();
            c.synced = c.appended;
            c.file = Arc::clone(&w.active);
            self.commit_cv.notify_all();
        }
        // Wake long-polled follower pulls: their cursors just went
        // stale, and the sooner they learn, the sooner they
        // re-bootstrap from the snapshot this compaction wrote.
        {
            let _r = self.repl.lock();
            self.repl_cv.notify_all();
        }
        Ok(())
    }

    /// Serializes one table as chunked snapshot records, reading word
    /// bytes directly out of the shard arenas — the mutation-free
    /// sibling of the wire document encoding, with no boxed documents
    /// in between. Records carry their own framing + checksum but no
    /// per-record fsync: the whole segment is fsync'd once before the
    /// manifest commits to it. Every table writes at least one record,
    /// so empty tables survive compaction too.
    fn write_table_snapshot(
        &self,
        file: &mut File,
        name: &str,
        table: &ShardedTable,
    ) -> Result<(), PhError> {
        let chunk_budget =
            usize::try_from(self.options.snapshot_chunk_bytes.max(1)).unwrap_or(usize::MAX);

        let write_record = |file: &mut File, count: usize, docs: &[u8]| -> Result<(), PhError> {
            let mut payload = Vec::with_capacity(64 + name.len() + docs.len() + CHECKSUM_LEN);
            payload.push(TAG_SNAPSHOT);
            name.to_string().encode(&mut payload);
            table.params().encode(&mut payload);
            table.next_doc_id().encode(&mut payload);
            count.encode(&mut payload);
            payload.extend_from_slice(docs);
            let sum = checksum(&payload);
            payload.extend_from_slice(&sum);
            codec::write_frame_capped(file, &payload, MAX_RECORD)
                .map_err(|e| PhError::Durability(format!("write snapshot record: {e}")))
        };

        let mut docs_buf: Vec<u8> = Vec::new();
        let mut count = 0usize;
        let mut records = 0usize;
        for shard in table.shards() {
            for i in 0..shard.len() {
                shard.doc_id(i).encode(&mut docs_buf);
                let range = shard.word_range(i);
                range.len().encode(&mut docs_buf);
                for wi in range {
                    let word = shard.word(wi);
                    word.len().encode(&mut docs_buf);
                    docs_buf.extend_from_slice(word);
                }
                count += 1;
                if docs_buf.len() >= chunk_budget {
                    write_record(file, count, &docs_buf)?;
                    docs_buf.clear();
                    count = 0;
                    records += 1;
                }
            }
        }
        if count > 0 || records == 0 {
            write_record(file, count, &docs_buf)?;
        }
        Ok(())
    }
}

/// A uniquely named scratch directory under the system temp dir,
/// removed (best-effort) on drop — what keeps the durability tests,
/// benches, and CI runs hermetic without a registry `tempfile`
/// dependency (the workspace is offline by policy).
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates `…/dbph-<label>-<pid>-<seq>-<nanos>`.
    ///
    /// # Errors
    /// [`PhError::Durability`] when the directory cannot be created.
    pub fn new(label: &str) -> Result<Self, PhError> {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0);
        let path = std::env::temp_dir().join(format!(
            "dbph-{label}-{}-{}-{nanos}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        fs::create_dir_all(&path).map_err(|e| io_err("create temp dir", &e))?;
        Ok(TempDir { path })
    }

    /// The directory's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use crate::protocol::ClientMessage;
    use crate::server::Server;
    use crate::swp_ph::EncryptedTable;
    use dbph_swp::{CipherWord, SwpParams};

    fn table(n: usize) -> EncryptedTable {
        EncryptedTable {
            params: SwpParams::new(13, 4, 32).unwrap(),
            docs: (0..n as u64)
                .map(|i| {
                    // One regular word plus, for every third doc, an
                    // irregular-length word: recovery must round-trip
                    // wire-legal deviants byte-identically too.
                    let mut words = vec![CipherWord(vec![i as u8; 13])];
                    if i % 3 == 0 {
                        words.push(CipherWord(vec![0xEE; 5]));
                    }
                    (i, words)
                })
                .collect(),
            next_doc_id: n as u64,
        }
    }

    fn create_msg(name: &str, n: usize) -> Vec<u8> {
        ClientMessage::CreateTable {
            name: name.into(),
            table: table(n),
        }
        .to_wire()
    }

    fn append_msg(name: &str, doc_id: u64) -> Vec<u8> {
        ClientMessage::Append {
            name: name.into(),
            doc_id,
            words: vec![CipherWord(vec![doc_id as u8 ^ 0x55; 13])],
        }
        .to_wire()
    }

    fn fetch_msg(name: &str) -> Vec<u8> {
        ClientMessage::FetchAll { name: name.into() }.to_wire()
    }

    fn delete_msg(name: &str, ids: Vec<u64>) -> Vec<u8> {
        ClientMessage::DeleteDocs {
            name: name.into(),
            doc_ids: ids,
        }
        .to_wire()
    }

    #[test]
    fn fresh_dir_survives_restart() {
        let tmp = TempDir::new("durable-fresh").unwrap();
        let server = Server::open_durable(tmp.path(), 2).unwrap();
        assert!(server.durable_log().is_some());
        assert!(tmp.path().join(MANIFEST).exists());
        let _ = server.handle(&create_msg("t", 7));
        let _ = server.handle(&append_msg("t", 7));
        let _ = server.handle(&delete_msg("t", vec![1, 1, 99]));
        let before = server.handle(&fetch_msg("t"));
        drop(server);

        let reopened = Server::open_durable(tmp.path(), 2).unwrap();
        assert_eq!(reopened.handle(&fetch_msg("t")), before);
        // The store keeps working after recovery: ids continue.
        let resp = reopened.handle(&append_msg("t", 8));
        assert!(!resp.is_empty());
        assert_eq!(
            crate::protocol::ServerResponse::from_wire(&resp).unwrap(),
            crate::protocol::ServerResponse::Ok
        );
    }

    #[test]
    fn failed_mutations_write_no_records() {
        let tmp = TempDir::new("durable-reject").unwrap();
        let server = Server::open_durable(tmp.path(), 1).unwrap();
        let _ = server.handle(&create_msg("t", 2));
        let log = Arc::clone(server.durable_log().unwrap());
        let after_create = log.active_segment_bytes();
        // Duplicate create and a stale append are rejected — and must
        // leave the log untouched (a record is written only for an
        // *applied* mutation).
        let _ = server.handle(&create_msg("t", 2));
        let _ = server.handle(&append_msg("t", 0));
        assert_eq!(log.active_segment_bytes(), after_create);
        // Queries and fetches never touch the log either.
        let _ = server.handle(&fetch_msg("t"));
        assert_eq!(log.active_segment_bytes(), after_create);
    }

    #[test]
    fn torn_tail_is_truncated_never_a_panic_or_partial_apply() {
        // Build the same 4-mutation session repeatedly, cut the active
        // segment at assorted byte offsets (record boundaries, one
        // byte in, mid-header, mid-payload, mid-checksum), and check
        // the reopened store equals an in-memory store that replayed
        // exactly the fully-persisted prefix of mutations.
        let messages = [
            create_msg("t", 5),
            append_msg("t", 5),
            append_msg("t", 6),
            delete_msg("t", vec![0, 6]),
        ];
        // First pass: learn the record end offsets.
        let boundaries: Vec<u64> = {
            let tmp = TempDir::new("durable-offsets").unwrap();
            let server = Server::open_durable(tmp.path(), 2).unwrap();
            messages
                .iter()
                .map(|m| {
                    let _ = server.handle(m);
                    fs::metadata(server.durable_log().unwrap().active_segment_path())
                        .unwrap()
                        .len()
                })
                .collect()
        };
        assert!(boundaries.windows(2).all(|w| w[0] < w[1]));

        let mut cuts: Vec<u64> = vec![0, 1, 3];
        for &b in &boundaries {
            cuts.extend([
                b.saturating_sub(9),
                b.saturating_sub(1),
                b,
                b.saturating_add(2),
            ]);
        }
        for cut in cuts {
            let cut = cut.min(*boundaries.last().unwrap());
            let tmp = TempDir::new("durable-cut").unwrap();
            let server = Server::open_durable(tmp.path(), 2).unwrap();
            for m in &messages {
                let _ = server.handle(m);
            }
            let active = server.durable_log().unwrap().active_segment_path();
            drop(server);
            let file = File::options().write(true).open(&active).unwrap();
            file.set_len(cut).unwrap();
            drop(file);

            // The reference replays only the mutations whose record
            // fully landed below the cut.
            let survivors = boundaries.iter().filter(|&&b| b <= cut).count();
            let reference = Server::with_shards(2);
            for m in &messages[..survivors] {
                let _ = reference.handle(m);
            }

            let recovered = Server::open_durable(tmp.path(), 2).unwrap();
            if survivors == 0 {
                // Nothing persisted: the table must not exist.
                let resp = recovered.handle(&fetch_msg("t"));
                assert_eq!(resp, reference.handle(&fetch_msg("t")), "cut {cut}");
            } else {
                assert_eq!(
                    recovered.handle(&fetch_msg("t")),
                    reference.handle(&fetch_msg("t")),
                    "recovered store diverged at cut {cut}"
                );
            }
            // And the truncated log accepts new mutations cleanly.
            if survivors > 0 {
                let resp = recovered.handle(&append_msg("t", 50));
                assert_eq!(
                    crate::protocol::ServerResponse::from_wire(&resp).unwrap(),
                    crate::protocol::ServerResponse::Ok
                );
            }
        }
    }

    #[test]
    fn compaction_rewrites_into_a_sealed_snapshot_and_prunes() {
        let tmp = TempDir::new("durable-compact").unwrap();
        let server = Server::open_durable(tmp.path(), 3).unwrap();
        let _ = server.handle(&create_msg("a", 9));
        let _ = server.handle(&create_msg("empty", 0));
        let _ = server.handle(&append_msg("a", 9));
        let _ = server.handle(&delete_msg("a", vec![2, 4]));
        let before = server.handle(&fetch_msg("a"));
        let before_empty = server.handle(&fetch_msg("empty"));

        let log = Arc::clone(server.durable_log().unwrap());
        let old_segments = log.segments();
        server.compact().unwrap();
        let new_segments = log.segments();
        assert_ne!(old_segments, new_segments);
        assert_eq!(new_segments.len(), 2, "snapshot + fresh active");
        assert_eq!(log.active_segment_bytes(), 0);
        for old in &old_segments {
            assert!(
                !segment_path(tmp.path(), *old).exists(),
                "superseded segment {old} not pruned"
            );
        }

        // Mutations after compaction land in the new active segment…
        let _ = server.handle(&append_msg("a", 10));
        let after_append = server.handle(&fetch_msg("a"));
        // Release *every* handle on the log — an Arc clone keeps the
        // directory lock alive, and reopening against a live owner is
        // (correctly) refused.
        drop(log);
        drop(server);
        // …and recovery = snapshot + tail log.
        let reopened = Server::open_durable(tmp.path(), 3).unwrap();
        assert_eq!(reopened.handle(&fetch_msg("a")), after_append);
        assert_eq!(reopened.handle(&fetch_msg("empty")), before_empty);
        assert_ne!(before, after_append);
    }

    #[test]
    fn threshold_triggers_compaction_automatically() {
        let tmp = TempDir::new("durable-threshold").unwrap();
        let options = DurableOptions {
            compact_threshold: 512,
            snapshot_chunk_bytes: 256,
            ..DurableOptions::default()
        };
        let server = Server::open_durable_with(tmp.path(), 2, Some(1), options.clone()).unwrap();
        let _ = server.handle(&create_msg("t", 4));
        let first_active = server.durable_log().unwrap().segments();
        for i in 4..40u64 {
            let _ = server.handle(&append_msg("t", i));
        }
        assert_ne!(
            server.durable_log().unwrap().segments(),
            first_active,
            "threshold never fired"
        );
        let before = server.handle(&fetch_msg("t"));
        drop(server);
        let reopened = Server::open_durable_with(tmp.path(), 2, Some(1), options).unwrap();
        assert_eq!(reopened.handle(&fetch_msg("t")), before);
    }

    #[test]
    fn manifest_corruption_is_detected() {
        let tmp = TempDir::new("durable-manifest").unwrap();
        {
            let server = Server::open_durable(tmp.path(), 1).unwrap();
            let _ = server.handle(&create_msg("t", 2));
        }
        let path = tmp.path().join(MANIFEST);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Server::open_durable(tmp.path(), 1),
            Err(PhError::Durability(_))
        ));
    }

    #[test]
    fn sealed_segment_corruption_is_an_error_not_a_truncation() {
        let tmp = TempDir::new("durable-sealed").unwrap();
        let sealed = {
            let server = Server::open_durable(tmp.path(), 1).unwrap();
            let _ = server.handle(&create_msg("t", 30));
            server.compact().unwrap();
            server.durable_log().unwrap().segments()[0]
        };
        let path = segment_path(tmp.path(), sealed);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Server::open_durable(tmp.path(), 1),
            Err(PhError::Durability(_))
        ));
    }

    #[test]
    fn unreferenced_segment_debris_is_swept() {
        let tmp = TempDir::new("durable-debris").unwrap();
        {
            let server = Server::open_durable(tmp.path(), 1).unwrap();
            let _ = server.handle(&create_msg("t", 3));
        }
        // Simulate a compaction that died before its manifest swap.
        let stray = segment_path(tmp.path(), 77);
        fs::write(&stray, b"half-written snapshot").unwrap();
        let server = Server::open_durable(tmp.path(), 1).unwrap();
        assert!(!stray.exists(), "debris survived open");
        // And the store is intact.
        let resp = server.handle(&fetch_msg("t"));
        assert!(!resp.is_empty());
    }

    #[test]
    fn second_live_owner_is_refused_until_the_first_dies() {
        let tmp = TempDir::new("durable-lock").unwrap();
        let first = Server::open_durable(tmp.path(), 1).unwrap();
        // A second owner of the same directory would interleave
        // appends into the active segment; it must be turned away at
        // open, before touching any state.
        assert!(matches!(
            Server::open_durable(tmp.path(), 1),
            Err(PhError::Durability(_))
        ));
        // The lock dies with its owner (kill -9 included — it's an fd
        // property, not a file that lingers), so a restart succeeds.
        drop(first);
        assert!(Server::open_durable(tmp.path(), 1).is_ok());
    }

    #[test]
    fn scrub_passes_a_clean_log_and_counts_everything() {
        let tmp = TempDir::new("durable-scrub-clean").unwrap();
        let server = Server::open_durable(tmp.path(), 2).unwrap();
        let _ = server.handle(&create_msg("t", 8));
        let _ = server.handle(&append_msg("t", 8));
        server.compact().unwrap();
        let _ = server.handle(&append_msg("t", 9));
        let _ = server.handle(&delete_msg("t", vec![1]));

        let report = server.scrub().unwrap();
        assert_eq!(report.segments, 2, "sealed snapshot + active");
        assert!(report.records >= 3, "snapshot records + 2 tail mutations");
        let log = server.durable_log().unwrap();
        let expected_bytes: u64 = log
            .segments()
            .iter()
            .map(|&id| fs::metadata(segment_path(tmp.path(), id)).unwrap().len())
            .sum();
        assert_eq!(report.bytes, expected_bytes);
        // Scrub is read-only: the store still serves and mutates.
        let resp = server.handle(&append_msg("t", 10));
        assert_eq!(
            crate::protocol::ServerResponse::from_wire(&resp).unwrap(),
            crate::protocol::ServerResponse::Ok
        );
    }

    #[test]
    fn scrub_is_clean_after_torn_active_recovery() {
        // A torn active tail is the *tolerated* corruption: recovery
        // truncates it, so a scrub right after open must pass — the
        // torn bytes are gone, not latent.
        let tmp = TempDir::new("durable-scrub-torn").unwrap();
        let active = {
            let server = Server::open_durable(tmp.path(), 1).unwrap();
            let _ = server.handle(&create_msg("t", 4));
            let _ = server.handle(&append_msg("t", 4));
            server.durable_log().unwrap().active_segment_path()
        };
        let len = fs::metadata(&active).unwrap().len();
        let file = File::options().write(true).open(&active).unwrap();
        file.set_len(len - 3).unwrap();
        drop(file);

        let recovered = Server::open_durable(tmp.path(), 1).unwrap();
        let report = recovered.scrub().unwrap();
        assert_eq!(report.segments, 1);
        assert!(report.records >= 1);
    }

    #[test]
    fn scrub_names_a_corrupt_sealed_segment() {
        // Bit rot in a *sealed* segment is exactly what scrub exists
        // to surface before the next restart trips over it.
        let tmp = TempDir::new("durable-scrub-rot").unwrap();
        let server = Server::open_durable(tmp.path(), 1).unwrap();
        let _ = server.handle(&create_msg("t", 30));
        server.compact().unwrap();
        let sealed = server.durable_log().unwrap().segments()[0];
        assert!(server.scrub().is_ok(), "clean before the flip");

        let path = segment_path(tmp.path(), sealed);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        let err = server.scrub().unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains(&format!("segment {sealed}")),
            "error names the segment: {msg}"
        );
        // Scrub reports; it does not poison (the recovery path owns
        // the serve/refuse decision for pre-existing damage).
        assert!(!server.durable_log().unwrap().is_poisoned());
    }

    #[test]
    fn temp_dirs_are_unique_and_removed_on_drop() {
        let a = TempDir::new("x").unwrap();
        let b = TempDir::new("x").unwrap();
        assert_ne!(a.path(), b.path());
        let path = a.path().to_path_buf();
        assert!(path.is_dir());
        drop(a);
        assert!(!path.exists());
    }
}
