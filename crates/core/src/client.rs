//! Alex — the client holding the only key.
//!
//! The client owns a [`FinalSwpPh`] instance (schema + master key),
//! talks to the server purely through serialized protocol messages,
//! and post-processes results: decrypting candidate tuples and
//! filtering the searchable scheme's false positives, exactly as §3
//! prescribes.
//!
//! The client is generic over a [`Transport`] — the thing that
//! answers its serialized messages. The default is the in-process
//! [`Server`] (a function call, the configuration every unit test
//! uses); [`crate::net::PooledClient`] plugs in a framed TCP
//! connection pool instead, with **zero** change to the bytes sent or
//! received — `tests/net_transport.rs` proves the two transports
//! byte-equivalent, responses and server transcripts alike.

use dbph_relation::{exec, Dnf, Projection, Query, Relation, Tuple};

use crate::error::PhError;
use crate::net::Transport;
use crate::ph::DatabasePh;
use crate::protocol::{ClientMessage, ServerResponse, WireTrapdoor, DEFAULT_CHUNK_BYTES};
use crate::server::Server;
use crate::swp_ph::FinalSwpPh;
use crate::wire::{WireDecode, WireEncode};

/// A client session for one outsourced table.
pub struct Client<T: Transport = Server> {
    ph: FinalSwpPh,
    transport: T,
    table_name: String,
    next_doc_id: u64,
}

impl<T: Transport> Client<T> {
    /// Creates a client for `ph`'s schema against `transport` — an
    /// in-process [`Server`] or any networked stand-in. The table is
    /// named after the schema.
    #[must_use]
    pub fn new(ph: FinalSwpPh, transport: T) -> Self {
        let table_name = ph.schema().name().to_string();
        Client {
            ph,
            transport,
            table_name,
            next_doc_id: 0,
        }
    }

    /// The table name used on the server.
    #[must_use]
    pub fn table_name(&self) -> &str {
        &self.table_name
    }

    /// The transport this client speaks through.
    #[must_use]
    pub fn transport(&self) -> &T {
        &self.transport
    }

    fn send(&self, msg: &ClientMessage) -> Result<ServerResponse, PhError> {
        let bytes = self.transport.call(&msg.to_wire())?;
        ServerResponse::from_wire(&bytes)
    }

    fn expect_ok(&self, msg: &ClientMessage) -> Result<(), PhError> {
        match self.send(msg)? {
            ServerResponse::Ok => Ok(()),
            ServerResponse::Error(e) => Err(PhError::Protocol(e)),
            _ => Err(PhError::Protocol("unexpected table response".into())),
        }
    }

    fn expect_table(&self, msg: &ClientMessage) -> Result<crate::swp_ph::EncryptedTable, PhError> {
        match self.send(msg)? {
            ServerResponse::Table(t) => Ok(t),
            ServerResponse::Error(e) => Err(PhError::Protocol(e)),
            _ => Err(PhError::Protocol("expected table response".into())),
        }
    }

    fn expect_chunk(
        &self,
        msg: &ClientMessage,
    ) -> Result<(crate::swp_ph::EncryptedTable, Option<u64>), PhError> {
        match self.send(msg)? {
            ServerResponse::TableChunk { table, next } => Ok((table, next)),
            ServerResponse::Error(e) => Err(PhError::Protocol(e)),
            _ => Err(PhError::Protocol("expected table chunk response".into())),
        }
    }

    fn expect_tables(
        &self,
        msg: &ClientMessage,
        expected: usize,
    ) -> Result<Vec<crate::swp_ph::EncryptedTable>, PhError> {
        match self.send(msg)? {
            ServerResponse::Tables(ts) if ts.len() == expected => Ok(ts),
            ServerResponse::Tables(ts) => Err(PhError::Protocol(format!(
                "batch response arity mismatch: sent {expected} queries, got {} results",
                ts.len()
            ))),
            ServerResponse::Error(e) => Err(PhError::Protocol(e)),
            _ => Err(PhError::Protocol("expected batch table response".into())),
        }
    }

    /// Encrypts `relation` and uploads it.
    ///
    /// # Errors
    /// Fails on schema mismatch or server rejection.
    pub fn outsource(&mut self, relation: &Relation) -> Result<(), PhError> {
        let table = self.ph.encrypt_table(relation)?;
        self.next_doc_id = table.next_doc_id;
        self.expect_ok(&ClientMessage::CreateTable {
            name: self.table_name.clone(),
            table,
        })
    }

    /// Runs an exact-select (or conjunctive) query remotely and
    /// returns the decrypted, false-positive-filtered result.
    ///
    /// # Errors
    /// Fails on binding errors, protocol failures, or corrupt results.
    pub fn select(&self, query: &Query) -> Result<Relation, PhError> {
        let qct = self.ph.encrypt_query(query)?;
        let terms = qct.terms.iter().map(WireTrapdoor::from_trapdoor).collect();
        let result = self.expect_table(&ClientMessage::Query {
            name: self.table_name.clone(),
            terms,
        })?;
        self.ph.decrypt_result(&result, query)
    }

    /// Runs several exact-select (or conjunctive) queries in **one**
    /// round-trip, returning one decrypted, false-positive-filtered
    /// relation per query, in order. The server sees exactly the same
    /// trapdoors and records exactly the same per-query transcript
    /// events as `queries.len()` calls to [`Self::select`] — batching
    /// amortizes transport, not leakage.
    ///
    /// # Errors
    /// Fails on binding errors, protocol failures, or corrupt results.
    pub fn select_many(&self, queries: &[Query]) -> Result<Vec<Relation>, PhError> {
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        let mut encrypted = Vec::with_capacity(queries.len());
        for query in queries {
            let qct = self.ph.encrypt_query(query)?;
            encrypted.push(qct.terms.iter().map(WireTrapdoor::from_trapdoor).collect());
        }
        let results = self.expect_tables(
            &ClientMessage::QueryBatch {
                name: self.table_name.clone(),
                queries: encrypted,
            },
            queries.len(),
        )?;
        queries
            .iter()
            .zip(results.iter())
            .map(|(query, table)| self.ph.decrypt_result(table, query))
            .collect()
    }

    /// Runs a disjunctive (DNF) query: one encrypted exact-select per
    /// disjunct — all disjuncts shipped in a single `QueryBatch`
    /// round-trip and fanned over the server's worker pool — results
    /// unioned by document identity client-side, with per-disjunct
    /// false-positive filtering. Each disjunct leaks its own access
    /// pattern to the server — no more, no less than running it
    /// standalone; batching changes framing (one message, one batch
    /// tag), never per-disjunct leakage.
    ///
    /// # Errors
    /// Fails on binding, protocol, or decryption errors.
    pub fn select_dnf(&self, dnf: &Dnf) -> Result<Relation, PhError> {
        let bound = dnf.bind(self.ph.schema())?;
        let mut encrypted = Vec::with_capacity(dnf.disjuncts().len());
        for query in dnf.disjuncts() {
            let qct = self.ph.encrypt_query(query)?;
            encrypted.push(qct.terms.iter().map(WireTrapdoor::from_trapdoor).collect());
        }
        let candidate_tables = self.expect_tables(
            &ClientMessage::QueryBatch {
                name: self.table_name.clone(),
                queries: encrypted,
            },
            dnf.disjuncts().len(),
        )?;
        let mut seen: std::collections::BTreeMap<u64, Tuple> = std::collections::BTreeMap::new();
        for ((query, indices), candidates) in
            dnf.disjuncts().iter().zip(&bound).zip(&candidate_tables)
        {
            for (doc_id, tuple) in self.ph.decrypt_docs(candidates)? {
                let exact = query
                    .terms()
                    .iter()
                    .zip(indices.iter())
                    .all(|(term, &i)| term.matches_at(&tuple, i));
                if exact {
                    seen.insert(doc_id, tuple);
                }
            }
        }
        let mut out = Relation::empty(self.ph.schema().clone());
        for tuple in seen.into_values() {
            out.insert(tuple)?;
        }
        Ok(out)
    }

    /// Runs a `SELECT` with projection: remote selection, local
    /// decryption and projection.
    ///
    /// # Errors
    /// Fails on binding/protocol errors.
    pub fn select_projected(
        &self,
        query: &Query,
        projection: &Projection,
    ) -> Result<Vec<Tuple>, PhError> {
        let relation = self.select(query)?;
        exec::project(&relation, projection).map_err(PhError::from)
    }

    /// Encrypts and appends one tuple (incremental insert).
    ///
    /// # Errors
    /// Fails on validation or server rejection.
    pub fn insert(&mut self, tuple: &Tuple) -> Result<(), PhError> {
        use crate::ph::IncrementalPh as _;
        // Build a one-tuple delta through the PH, then ship the words.
        let mut delta = crate::swp_ph::EncryptedTable {
            params: *self.ph.params(),
            docs: Vec::new(),
            next_doc_id: self.next_doc_id,
        };
        self.ph.append_tuple(&mut delta, tuple)?;
        let (doc_id, words) = delta.docs.pop().expect("append pushed one doc");
        self.expect_ok(&ClientMessage::Append {
            name: self.table_name.clone(),
            doc_id,
            words,
        })?;
        self.next_doc_id = doc_id + 1;
        Ok(())
    }

    /// Encrypts and appends a batch of tuples in **one** round-trip.
    /// The server applies the batch atomically (all ids fresh or
    /// nothing stored) and records one `Append` event per tuple, just
    /// as `tuples.len()` calls to [`Self::insert`] would.
    ///
    /// # Errors
    /// Fails on validation or server rejection; on rejection no tuple
    /// of the batch was stored.
    pub fn insert_many(&mut self, tuples: &[Tuple]) -> Result<(), PhError> {
        use crate::ph::IncrementalPh as _;
        if tuples.is_empty() {
            return Ok(());
        }
        let mut delta = crate::swp_ph::EncryptedTable {
            params: *self.ph.params(),
            docs: Vec::new(),
            next_doc_id: self.next_doc_id,
        };
        for tuple in tuples {
            self.ph.append_tuple(&mut delta, tuple)?;
        }
        let next = delta.next_doc_id;
        self.expect_ok(&ClientMessage::AppendBatch {
            name: self.table_name.clone(),
            docs: delta.docs,
        })?;
        self.next_doc_id = next;
        Ok(())
    }

    /// Deletes the tuples matching `query`, returning how many were
    /// removed. Two phases: the server returns the *candidate* set for
    /// the encrypted query (which may contain false positives); the
    /// client decrypts, re-checks the plaintext predicate, and sends
    /// back only the confirmed document ids. A false positive is
    /// therefore never deleted.
    ///
    /// # Errors
    /// Fails on binding, protocol, or decryption errors.
    pub fn delete(&self, query: &Query) -> Result<usize, PhError> {
        let qct = self.ph.encrypt_query(query)?;
        let terms = qct.terms.iter().map(WireTrapdoor::from_trapdoor).collect();
        let candidates = self.expect_table(&ClientMessage::Query {
            name: self.table_name.clone(),
            terms,
        })?;

        // Confirm: decrypt each candidate and re-check exactly.
        let indices = query.bind(self.ph.schema())?;
        let confirmed: Vec<u64> = self
            .ph
            .decrypt_docs(&candidates)?
            .into_iter()
            .filter(|(_, tuple)| {
                query
                    .terms()
                    .iter()
                    .zip(indices.iter())
                    .all(|(term, &i)| term.matches_at(tuple, i))
            })
            .map(|(id, _)| id)
            .collect();
        let removed = confirmed.len();
        if removed > 0 {
            self.expect_ok(&ClientMessage::DeleteDocs {
                name: self.table_name.clone(),
                doc_ids: confirmed,
            })?;
        }
        Ok(removed)
    }

    /// Tuples per `AppendBatch` on the rekey re-upload path: large
    /// enough to amortize round-trips, small enough that no single
    /// upload frame grows with the table.
    const REKEY_BATCH_ROWS: usize = 512;

    /// Rotates the master key. Both directions of the transfer are
    /// chunked so no frame ever scales with the table: the old
    /// ciphertext streams down as [`ClientMessage::FetchChunk`] pages,
    /// and the re-encrypted table streams back up as an empty
    /// `CreateTable` followed by bounded `AppendBatch` messages. The
    /// server copy is replaced from the client's perspective
    /// (drop + create + appends).
    ///
    /// # Errors
    /// Fails on protocol or decryption errors; on failure the old
    /// table may already be dropped — callers wanting stronger
    /// atomicity should snapshot first ([`Self::export_snapshot`] /
    /// `dbph_core::snapshot`).
    pub fn rekey(&mut self, new_ph: FinalSwpPh) -> Result<(), PhError> {
        if new_ph.schema() != self.ph.schema() {
            return Err(PhError::SchemaMismatch {
                expected: self.ph.schema().to_string(),
                actual: new_ph.schema().to_string(),
            });
        }
        let table = self.fetch_table_chunked(DEFAULT_CHUNK_BYTES)?;
        let plaintext = self.ph.decrypt_table(&table)?;
        self.drop_table()?;
        self.ph = new_ph;
        self.outsource(&Relation::empty(plaintext.schema().clone()))?;
        for rows in plaintext.tuples().chunks(Self::REKEY_BATCH_ROWS) {
            self.insert_many(rows)?;
        }
        Ok(())
    }

    /// Downloads the whole table ciphertext as a bounded-chunk stream
    /// ([`ClientMessage::FetchChunk`] with a positional continuation
    /// token) and reassembles it — byte-identical to what a monolithic
    /// [`ClientMessage::FetchAll`] would return, but no single frame
    /// exceeds `chunk_bytes` plus one document, so tables beyond the
    /// transport's frame cap stream through where `FetchAll` could not
    /// even be framed.
    ///
    /// # Errors
    /// Fails on protocol errors, or if the server's continuation
    /// tokens ever stall or regress (a violation of the chunk
    /// contract).
    pub fn fetch_table_chunked(
        &self,
        chunk_bytes: u64,
    ) -> Result<crate::swp_ph::EncryptedTable, PhError> {
        let mut token = 0u64;
        let mut assembled: Option<crate::swp_ph::EncryptedTable> = None;
        loop {
            let (chunk, next) = self.expect_chunk(&ClientMessage::FetchChunk {
                name: self.table_name.clone(),
                token,
                max_bytes: chunk_bytes,
            })?;
            assembled = Some(match assembled {
                None => chunk,
                Some(mut table) => {
                    if table.params != chunk.params {
                        return Err(PhError::Protocol(
                            "table parameters changed mid-stream".into(),
                        ));
                    }
                    table.docs.extend(chunk.docs);
                    table.next_doc_id = chunk.next_doc_id;
                    table
                }
            });
            match next {
                Some(n) if n > token => token = n,
                Some(n) => {
                    return Err(PhError::Protocol(format!(
                        "chunk stream stalled: token {n} after {token}"
                    )))
                }
                None => return Ok(assembled.expect("at least one chunk")),
            }
        }
    }

    /// Downloads the table as a chunked stream and decrypts it — the
    /// bounded-frame sibling of [`Self::fetch_all`].
    ///
    /// # Errors
    /// As [`Self::fetch_table_chunked`], plus decryption errors.
    pub fn fetch_all_chunked(&self, chunk_bytes: u64) -> Result<Relation, PhError> {
        let table = self.fetch_table_chunked(chunk_bytes)?;
        self.ph.decrypt_table(&table)
    }

    /// Streams the table ciphertext down in bounded chunks and packs
    /// it into a `dbph_core::snapshot` export blob — the offline
    /// backup Alex takes before risky operations, now without ever
    /// buffering the table in one transport frame.
    ///
    /// # Errors
    /// As [`Self::fetch_table_chunked`].
    pub fn export_snapshot(&self, chunk_bytes: u64) -> Result<Vec<u8>, PhError> {
        let table = self.fetch_table_chunked(chunk_bytes)?;
        Ok(crate::snapshot::export(&self.table_name, &table))
    }

    /// Downloads and decrypts the whole table.
    ///
    /// # Errors
    /// Fails on protocol or decryption errors.
    pub fn fetch_all(&self) -> Result<Relation, PhError> {
        let table = self.expect_table(&ClientMessage::FetchAll {
            name: self.table_name.clone(),
        })?;
        self.ph.decrypt_table(&table)
    }

    /// Drops the outsourced table.
    ///
    /// # Errors
    /// Fails on server rejection.
    pub fn drop_table(&self) -> Result<(), PhError> {
        self.expect_ok(&ClientMessage::DropTable {
            name: self.table_name.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbph_crypto::SecretKey;
    use dbph_relation::schema::emp_schema;
    use dbph_relation::{tuple, Value};

    fn setup() -> (Client, Server) {
        let server = Server::new();
        let ph = FinalSwpPh::new(emp_schema(), &SecretKey::from_bytes([11u8; 32])).unwrap();
        (Client::new(ph, server.clone()), server)
    }

    fn emp() -> Relation {
        Relation::from_tuples(
            emp_schema(),
            vec![
                tuple!["Montgomery", "HR", 7500i64],
                tuple!["Smith", "IT", 4900i64],
                tuple!["Jones", "IT", 1200i64],
            ],
        )
        .unwrap()
    }

    #[test]
    fn outsource_select_roundtrip() {
        let (mut client, _server) = setup();
        client.outsource(&emp()).unwrap();
        let result = client.select(&Query::select("dept", "IT")).unwrap();
        assert_eq!(result.len(), 2);
        let all = client.fetch_all().unwrap();
        assert!(all.same_multiset(&emp()));
    }

    #[test]
    fn insert_then_select() {
        let (mut client, _server) = setup();
        client.outsource(&emp()).unwrap();
        client.insert(&tuple!["Kim", "HR", 9000i64]).unwrap();
        client.insert(&tuple!["Lee", "IT", 9000i64]).unwrap();
        let result = client.select(&Query::select("salary", 9000i64)).unwrap();
        assert_eq!(result.len(), 2);
    }

    #[test]
    fn select_many_matches_individual_selects() {
        for shards in [1, 4] {
            let server = Server::with_shards(shards);
            let ph = FinalSwpPh::new(emp_schema(), &SecretKey::from_bytes([11u8; 32])).unwrap();
            let mut client = Client::new(ph, server.clone());
            client.outsource(&emp()).unwrap();
            let queries = [
                Query::select("dept", "IT"),
                Query::select("name", "Montgomery"),
                Query::select("salary", 9999i64),
            ];
            let batched = client.select_many(&queries).unwrap();
            assert_eq!(batched.len(), 3);
            for (query, batch_result) in queries.iter().zip(&batched) {
                let single = client.select(query).unwrap();
                assert!(
                    batch_result.same_multiset(&single),
                    "batched result diverged for {query} at {shards} shard(s)"
                );
            }
            // One transcript event per batched query, plus the three
            // singles re-run above.
            assert_eq!(server.observer().queries().len(), 6);
        }
    }

    #[test]
    fn select_many_empty_is_empty() {
        let (mut client, _server) = setup();
        client.outsource(&emp()).unwrap();
        assert!(client.select_many(&[]).unwrap().is_empty());
    }

    #[test]
    fn insert_many_matches_repeated_insert() {
        let (mut client, server) = setup();
        client.outsource(&emp()).unwrap();
        client
            .insert_many(&[
                tuple!["Kim", "HR", 9000i64],
                tuple!["Lee", "IT", 9000i64],
                tuple!["Park", "IT", 1200i64],
            ])
            .unwrap();
        let result = client.select(&Query::select("salary", 9000i64)).unwrap();
        assert_eq!(result.len(), 2);
        assert_eq!(client.fetch_all().unwrap().len(), 6);
        // Exactly one Append event per inserted tuple.
        let appends = server
            .observer()
            .events()
            .iter()
            .filter(|e| matches!(e, crate::server::ServerEvent::Append { .. }))
            .count();
        assert_eq!(appends, 3);
        // Follow-up single inserts continue from the batch's ids.
        client.insert(&tuple!["Choi", "HR", 1i64]).unwrap();
        assert_eq!(client.fetch_all().unwrap().len(), 7);
    }

    #[test]
    fn projection() {
        let (mut client, _server) = setup();
        client.outsource(&emp()).unwrap();
        let rows = client
            .select_projected(
                &Query::select("dept", "IT"),
                &Projection::Columns(vec!["name".into()]),
            )
            .unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.arity() == 1));
    }

    #[test]
    fn server_sees_only_ciphertext() {
        // The transcript must not contain the plaintext anywhere.
        let (mut client, server) = setup();
        client.outsource(&emp()).unwrap();
        client.select(&Query::select("name", "Montgomery")).unwrap();

        let events = server.observer().events();
        let rendered = format!("{events:?}");
        assert!(
            !rendered.contains("Montgomery"),
            "plaintext leaked to server"
        );
        assert!(!rendered.contains("7500"));
    }

    #[test]
    fn server_observes_access_pattern() {
        // …but Eve *does* learn which documents matched — the paper's
        // unavoidable leak.
        let (mut client, server) = setup();
        client.outsource(&emp()).unwrap();
        client.select(&Query::select("dept", "IT")).unwrap();
        let queries = server.observer().queries();
        assert_eq!(queries.len(), 1);
        assert_eq!(queries[0].1.len(), 2, "two IT tuples matched");
    }

    #[test]
    fn drop_table_removes_state() {
        let (mut client, _server) = setup();
        client.outsource(&emp()).unwrap();
        client.drop_table().unwrap();
        assert!(client.fetch_all().is_err());
    }

    #[test]
    fn select_errors_on_unknown_attribute() {
        let (mut client, _server) = setup();
        client.outsource(&emp()).unwrap();
        assert!(client.select(&Query::select("missing", 1i64)).is_err());
    }

    #[test]
    fn empty_result_is_empty_relation() {
        let (mut client, _server) = setup();
        client.outsource(&emp()).unwrap();
        let r = client.select(&Query::select("name", "Nobody")).unwrap();
        assert!(r.is_empty());
        assert_eq!(r.schema(), &emp_schema());
    }

    #[test]
    fn two_clients_different_keys_cannot_read_each_other() {
        let server = Server::new();
        let ph1 = FinalSwpPh::new(emp_schema(), &SecretKey::from_bytes([1u8; 32])).unwrap();
        let mut c1 = Client::new(ph1, server.clone());
        c1.outsource(&emp()).unwrap();

        // Client 2 shares the server but has a different key; fetching
        // c1's table must not yield the plaintext.
        let ph2 = FinalSwpPh::new(emp_schema(), &SecretKey::from_bytes([2u8; 32])).unwrap();
        let c2 = Client::new(ph2, server);
        if let Ok(r) = c2.fetch_all() {
            assert!(!r.same_multiset(&emp()))
        }
    }

    #[test]
    fn select_dnf_unions_without_duplicates() {
        let (mut client, _server) = setup();
        client.outsource(&emp()).unwrap();
        // salary = 4900 OR dept = 'IT': Smith matches both disjuncts.
        let dnf = Dnf::new(vec![
            Query::select("salary", 4900i64),
            Query::select("dept", "IT"),
        ])
        .unwrap();
        let result = client.select_dnf(&dnf).unwrap();
        let expected = dbph_relation::dnf::select_dnf(&emp(), &dnf).unwrap();
        assert!(result.same_multiset(&expected));
        assert_eq!(result.len(), 2); // Smith + Jones
    }

    #[test]
    fn select_dnf_single_disjunct_matches_plain_select() {
        let (mut client, _server) = setup();
        client.outsource(&emp()).unwrap();
        let q = Query::select("dept", "IT");
        let via_dnf = client.select_dnf(&Dnf::single(q.clone())).unwrap();
        let direct = client.select(&q).unwrap();
        assert!(via_dnf.same_multiset(&direct));
    }

    #[test]
    fn delete_removes_exact_matches_only() {
        let (mut client, _server) = setup();
        client.outsource(&emp()).unwrap();
        let removed = client.delete(&Query::select("dept", "IT")).unwrap();
        assert_eq!(removed, 2);
        let rest = client.fetch_all().unwrap();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest.tuples()[0].get(0), Some(&Value::str("Montgomery")));
        // Deleting again removes nothing.
        assert_eq!(client.delete(&Query::select("dept", "IT")).unwrap(), 0);
    }

    #[test]
    fn delete_never_removes_false_positives() {
        use dbph_swp::SwpParams;
        // 2-bit checks: the server's candidate set is a large superset;
        // the confirmed delete must still remove only true matches.
        let server = Server::new();
        let codec_len = crate::encoding::WordCodec::new(emp_schema()).word_len();
        let params = SwpParams::new(codec_len, 4, 2).unwrap();
        let ph = FinalSwpPh::with_params(emp_schema(), &SecretKey::from_bytes([44u8; 32]), params)
            .unwrap();
        let mut client = Client::new(ph, server);
        let mut big = Relation::empty(emp_schema());
        for i in 0..200i64 {
            big.insert(tuple![format!("e{i:03}"), "IT", i]).unwrap();
        }
        big.insert(tuple!["victim", "HR", 9999i64]).unwrap();
        client.outsource(&big).unwrap();

        let removed = client.delete(&Query::select("dept", "HR")).unwrap();
        assert_eq!(removed, 1);
        assert_eq!(client.fetch_all().unwrap().len(), 200);
    }

    #[test]
    fn chunked_fetch_equals_monolithic_fetch() {
        let server = Server::with_shards(3);
        let ph = FinalSwpPh::new(emp_schema(), &SecretKey::from_bytes([11u8; 32])).unwrap();
        let mut client = Client::new(ph, server);
        client.outsource(&emp()).unwrap();
        // The monolithic path and the chunked path (tiny budget: one
        // doc per chunk) must reassemble the identical ciphertext.
        let whole = client
            .expect_table(&ClientMessage::FetchAll {
                name: client.table_name().to_string(),
            })
            .unwrap();
        for chunk_bytes in [1u64, 200, 1 << 20] {
            let streamed = client.fetch_table_chunked(chunk_bytes).unwrap();
            assert_eq!(streamed, whole, "chunked fetch diverged at {chunk_bytes} B");
        }
        assert!(client.fetch_all_chunked(64).unwrap().same_multiset(&emp()));
    }

    #[test]
    fn export_snapshot_streams_and_imports_back() {
        let (mut client, _server) = setup();
        client.outsource(&emp()).unwrap();
        let blob = client.export_snapshot(128).unwrap();
        let (name, table) = crate::snapshot::import(&blob).unwrap();
        assert_eq!(name, client.table_name());
        // The snapshot holds the exact ciphertext a FetchAll returns.
        let whole = client
            .expect_table(&ClientMessage::FetchAll { name })
            .unwrap();
        assert_eq!(table, whole);
    }

    #[test]
    fn chunked_fetch_unknown_table_errors() {
        let (client, _server) = setup();
        assert!(client.fetch_table_chunked(1024).is_err());
    }

    #[test]
    fn rekey_preserves_data_and_invalidates_old_key() {
        let (mut client, server) = setup();
        client.outsource(&emp()).unwrap();
        let new_ph = FinalSwpPh::new(emp_schema(), &SecretKey::from_bytes([222u8; 32])).unwrap();
        client.rekey(new_ph).unwrap();

        // Data survives under the new key.
        assert!(client.fetch_all().unwrap().same_multiset(&emp()));
        let r = client.select(&Query::select("dept", "IT")).unwrap();
        assert_eq!(r.len(), 2);

        // A reader with the old key can no longer decrypt.
        let old_ph = FinalSwpPh::new(emp_schema(), &SecretKey::from_bytes([11u8; 32])).unwrap();
        let old_reader = Client::new(old_ph, server);
        if let Ok(rel) = old_reader.fetch_all() {
            assert!(!rel.same_multiset(&emp()))
        }
    }

    #[test]
    fn rekey_rejects_schema_change() {
        let (mut client, _server) = setup();
        client.outsource(&emp()).unwrap();
        let other = FinalSwpPh::new(
            dbph_relation::schema::hospital_schema(),
            &SecretKey::from_bytes([5u8; 32]),
        )
        .unwrap();
        assert!(matches!(
            client.rekey(other),
            Err(PhError::SchemaMismatch { .. })
        ));
    }

    #[test]
    fn montgomery_worked_example() {
        // §3 end-to-end: σ_name:"Montgomery" over the outsourced Emp.
        let (mut client, _server) = setup();
        client.outsource(&emp()).unwrap();
        let r = client.select(&Query::select("name", "Montgomery")).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.tuples()[0].get(2), Some(&Value::int(7500)));
    }
}
