//! Persistent worker-pool executor for the server's scan engine.
//!
//! PR 1 parallelized a single query across shards with
//! `std::thread::scope`, which re-spawns (and re-joins) OS threads for
//! every query — fine for one big scan, wasteful for a `QueryBatch`
//! where K queries each pay the spawn cost and still run one after
//! another. This module replaces that with a fixed set of long-lived
//! workers fed by a work queue: a batch of K queries over S shards
//! becomes K×S independent tasks drained concurrently by however many
//! cores the machine has.
//!
//! Two properties matter for the rest of the system:
//!
//! * **Submission-order results.** [`Executor::scatter`] returns its
//!   results in the order the jobs were submitted, no matter in which
//!   order workers finish them. The batch scan relies on this to keep
//!   wire responses in query order (and the tests complete tasks out
//!   of order on purpose to prove it).
//! * **Panic transparency.** A panicking job does not kill a worker or
//!   wedge the pool: the payload is carried back to the `scatter`
//!   caller and resumed there, matching what `std::thread::scope`'s
//!   join did in PR 1.
//!
//! Scheduling is server-internal and leakage-free by the same argument
//! as sharding: Eve already holds every ciphertext and trapdoor, so
//! how she orders her own work reveals nothing new. The transcript
//! obligations live in `server.rs` (events recorded strictly in batch
//! order, after the join) and are enforced by `tests/sharding.rs`.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

use crate::telemetry::{Counter, Gauge, Histogram};

/// A queued unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Always-on pool statistics (the precedent is the durable log's sync
/// counter): relaxed atomics the server folds into its stats snapshot.
/// Task timing pays one `Instant` pair per task — noise against a
/// trapdoor scan over a shard, and identical in the inline and queued
/// paths so a 1-worker pool reports comparable numbers.
#[derive(Debug, Default)]
pub struct ExecutorStats {
    /// Tasks executed (inline or on a worker).
    pub tasks: Counter,
    /// Per-task wall time in nanoseconds.
    pub task_nanos: Histogram,
    /// Total nanoseconds workers (or the inline path) spent running
    /// tasks — utilization is `busy_nanos / (wall * workers)`.
    pub busy_nanos: Counter,
    /// Jobs currently queued (sampled at push/pop).
    pub queue_depth: Gauge,
    /// Deepest the queue has ever been.
    pub queue_high_water: Gauge,
}

impl ExecutorStats {
    /// Times one job, recording count, latency, and busy time.
    fn run_timed<R>(&self, job: impl FnOnce() -> R) -> R {
        let t0 = std::time::Instant::now();
        let result = job();
        let nanos = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.tasks.inc();
        self.task_nanos.record(nanos);
        self.busy_nanos.add(nanos);
        result
    }
}

/// Queue state shared between the pool handle and its workers.
struct Inner {
    queue: Mutex<VecDeque<Job>>,
    /// Signaled when a job is queued or shutdown begins.
    available: Condvar,
    /// Set once by `Drop`; workers drain the queue, then exit.
    shutdown: AtomicBool,
    /// Pool metrics, shared with [`Executor::stats`].
    stats: ExecutorStats,
}

/// A fixed-size pool of long-lived worker threads.
///
/// Construct one with [`Executor::new`] (tests use explicit sizes to
/// pin scheduling behavior) or share the process-wide pool sized to
/// `available_parallelism` via [`Executor::global`]. Dropping a pool
/// lets queued work finish, then joins every worker; the global pool
/// is never dropped.
pub struct Executor {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl Executor {
    /// Spawns a pool of `workers` threads (clamped to at least 1).
    #[must_use]
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            stats: ExecutorStats::default(),
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("dbph-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawning pool worker")
            })
            .collect();
        Executor {
            inner,
            workers: handles,
        }
    }

    /// The process-wide pool, created on first use with one worker per
    /// available core. This is what [`crate::server::Server`] and
    /// [`crate::storage::TableStore`] use unless handed a dedicated
    /// pool.
    #[must_use]
    pub fn global() -> Arc<Executor> {
        static GLOBAL: OnceLock<Arc<Executor>> = OnceLock::new();
        Arc::clone(GLOBAL.get_or_init(|| {
            let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
            Arc::new(Executor::new(cores))
        }))
    }

    /// Number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The pool's always-on metrics (queue depth, task count and
    /// latency, busy time). The server samples them into its stats
    /// snapshot.
    #[must_use]
    pub fn stats(&self) -> &ExecutorStats {
        &self.inner.stats
    }

    /// Runs every job and returns their results **in submission
    /// order**, regardless of completion order.
    ///
    /// With a single worker (or a single job) the jobs run inline on
    /// the caller's thread in submission order — same results, zero
    /// queue/channel overhead — so a 1-worker pool is exactly the
    /// sequential engine, which the invariance tests use as the
    /// reference.
    ///
    /// # Panics
    /// If a job panics, the first observed payload is resumed on the
    /// caller's thread after all jobs of the batch have finished
    /// (mirroring a scoped-thread join). Jobs must not call `scatter`
    /// on the same pool: a worker blocking on its own pool's results
    /// can deadlock.
    pub fn scatter<R, F>(&self, jobs: Vec<F>) -> Vec<R>
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        if self.workers() <= 1 || jobs.len() <= 1 {
            return jobs
                .into_iter()
                .map(|job| self.inner.stats.run_timed(job))
                .collect();
        }
        let n = jobs.len();
        let (tx, rx) = mpsc::channel();
        {
            let mut queue = self.inner.queue.lock();
            for (index, job) in jobs.into_iter().enumerate() {
                let tx = tx.clone();
                queue.push_back(Box::new(move || {
                    let result = catch_unwind(AssertUnwindSafe(job));
                    // The receiver only disappears if the caller
                    // panicked out of the collection loop; dropping
                    // the result is then the right thing.
                    let _ = tx.send((index, result));
                }));
            }
            let depth = queue.len() as u64;
            self.inner.stats.queue_depth.set(depth);
            self.inner.stats.queue_high_water.set_max(depth);
        }
        self.inner.available.notify_all();
        drop(tx);

        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut panic = None;
        for _ in 0..n {
            let (index, result) = rx.recv().expect("pool dropped a result channel");
            match result {
                Ok(value) => slots[index] = Some(value),
                // Keep the first payload when several jobs panic.
                Err(payload) => {
                    if panic.is_none() {
                        panic = Some(payload);
                    }
                }
            }
        }
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every task reported exactly once"))
            .collect()
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        // The flag must flip while holding the queue mutex: a worker
        // that has just seen `shutdown == false` still holds the lock
        // until its `wait` releases it, so storing under the lock (and
        // notifying before releasing) cannot slip into that window —
        // the classic lost-wakeup that would leave `join` hanging.
        {
            let _queue = self.inner.queue.lock();
            self.inner.shutdown.store(true, Ordering::SeqCst);
            self.inner.available.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let job = {
            let mut queue = inner.queue.lock();
            loop {
                if let Some(job) = queue.pop_front() {
                    inner.stats.queue_depth.set(queue.len() as u64);
                    break Some(job);
                }
                if inner.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                inner.available.wait(&mut queue);
            }
        };
        match job {
            // A panicking job must not take the worker down with it;
            // `scatter` already captured the payload for the caller.
            Some(job) => {
                let _ = catch_unwind(AssertUnwindSafe(|| inner.stats.run_timed(job)));
            }
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn scatter_returns_results_in_submission_order() {
        let pool = Executor::new(4);
        // Later tasks finish first: earlier tasks sleep longer.
        let results = pool.scatter(
            (0..8u64)
                .map(|i| {
                    move || {
                        std::thread::sleep(Duration::from_millis((8 - i) * 3));
                        i * 10
                    }
                })
                .collect(),
        );
        assert_eq!(results, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn single_worker_pool_runs_inline_and_in_order() {
        let pool = Executor::new(1);
        let order = Arc::new(Mutex::new(Vec::new()));
        let results = pool.scatter(
            (0..5usize)
                .map(|i| {
                    let order = Arc::clone(&order);
                    move || {
                        order.lock().push(i);
                        i
                    }
                })
                .collect(),
        );
        assert_eq!(results, vec![0, 1, 2, 3, 4]);
        assert_eq!(*order.lock(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn pool_survives_many_batches() {
        let pool = Executor::new(3);
        for round in 0..50usize {
            let results = pool.scatter((0..6usize).map(|i| move || round + i).collect());
            assert_eq!(results, (round..round + 6).collect::<Vec<_>>());
        }
        assert_eq!(pool.workers(), 3);
    }

    #[test]
    fn panicking_job_propagates_and_pool_stays_usable() {
        let pool = Executor::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.scatter(
                (0..4usize)
                    .map(|i| move || assert!(i != 2, "job 2 exploded"))
                    .collect(),
            )
        }));
        assert!(caught.is_err(), "panic must reach the scatter caller");
        // The pool is still fully operational afterwards.
        let results = pool.scatter((0..4usize).map(|i| move || i + 1).collect());
        assert_eq!(results, vec![1, 2, 3, 4]);
    }

    #[test]
    fn zero_requested_workers_clamps_to_one() {
        let pool = Executor::new(0);
        assert_eq!(pool.workers(), 1);
        assert_eq!(pool.scatter(vec![|| 7]), vec![7]);
    }

    #[test]
    fn drop_joins_all_workers_after_queued_work() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = Executor::new(2);
            let results = pool.scatter(
                (0..10usize)
                    .map(|_| {
                        let counter = Arc::clone(&counter);
                        move || counter.fetch_add(1, Ordering::SeqCst)
                    })
                    .collect(),
            );
            assert_eq!(results.len(), 10);
        } // Drop here: workers must exit cleanly.
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn stats_count_tasks_in_both_paths() {
        // Queued path: a 4-worker pool with a multi-job batch.
        let pool = Executor::new(4);
        let _ = pool.scatter((0..8usize).map(|i| move || i).collect());
        assert_eq!(pool.stats().tasks.get(), 8);
        assert_eq!(pool.stats().task_nanos.count(), 8);
        assert!(pool.stats().queue_high_water.get() >= 1);
        // Inline path: a 1-worker pool times tasks identically.
        let serial = Executor::new(1);
        let _ = serial.scatter((0..3usize).map(|i| move || i).collect());
        assert_eq!(serial.stats().tasks.get(), 3);
        assert_eq!(serial.stats().task_nanos.count(), 3);
    }

    #[test]
    fn global_pool_is_shared_and_sized_to_the_machine() {
        let a = Executor::global();
        let b = Executor::global();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(a.workers() >= 1);
        assert_eq!(
            a.scatter((0..3usize).map(|i| move || i * i).collect()),
            vec![0, 1, 4]
        );
    }
}
