//! The §3 construction: a database PH from searchable encryption.
//!
//! * Each tuple becomes a *document*: one fixed-length word per
//!   attribute (`value | padding | attribute-id`, see
//!   [`crate::encoding`]).
//! * Documents are encrypted word-by-word under a
//!   [`SearchableScheme`]; the collection is the table ciphertext.
//! * An exact select `σ_{a=v}` becomes the trapdoor for the word that
//!   `⟨a:v⟩` would encode to — the paper's
//!   `σ_name:"Montgomery" ↦ φ_"MontgomeryN"`.
//! * The server's `ψ` scans the collection with the trapdoor and
//!   returns the sub-collection of matching documents (including the
//!   occasional false positive, which the client filters after
//!   decryption).
//!
//! `SwpPh` is generic over the searchable scheme, mirroring the
//! paper's "others can be used instead"; [`FinalSwpPh`] fixes the SWP
//! final scheme, the only variant that can also decrypt.

use serde::{Deserialize, Serialize};

use dbph_crypto::SecretKey;
use dbph_relation::{Query, Relation, Schema};
use dbph_swp::{matches, CipherWord, FinalScheme, Location, SearchableScheme, SwpParams, Word};

use crate::encoding::WordCodec;
use crate::error::PhError;
use crate::ph::{DatabasePh, IncrementalPh};

/// An encrypted table: per-tuple documents of cipher words. This is
/// exactly what Eve stores — no plaintext, no key material, but a
/// visible tuple count and visible document identities.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncryptedTable {
    /// SWP parameters (public; the server needs them to run `ψ`).
    pub params: SwpParams,
    /// One entry per tuple: `(document id, cipher words in attribute
    /// order)`. Document ids are assigned at encryption time and are
    /// stable under `ψ` (a result is a sub-multiset of the input).
    pub docs: Vec<(u64, Vec<CipherWord>)>,
    /// Next fresh document id (monotone; supports appends).
    pub next_doc_id: u64,
}

impl EncryptedTable {
    /// Number of encrypted tuples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the table ciphertext holds no tuples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// The document ids present (what a result set reveals to Eve).
    #[must_use]
    pub fn doc_ids(&self) -> Vec<u64> {
        self.docs.iter().map(|(id, _)| *id).collect()
    }

    /// Total ciphertext size in bytes (words only, excluding ids) —
    /// used by the encoding benches.
    #[must_use]
    pub fn ciphertext_bytes(&self) -> usize {
        self.docs
            .iter()
            .map(|(_, words)| words.iter().map(|w| w.0.len()).sum::<usize>())
            .sum()
    }
}

/// An encrypted query: one trapdoor per conjunction term. The server
/// intersects per-term document matches.
#[derive(Clone)]
pub struct EncryptedQuery<T> {
    /// Per-term trapdoors, in query-term order.
    pub terms: Vec<T>,
}

/// The §3 database PH over a searchable scheme `S`.
#[derive(Clone)]
pub struct SwpPh<S: SearchableScheme> {
    scheme: S,
    codec: WordCodec,
    name: &'static str,
}

/// The paper's reference instantiation: `SwpPh` over the SWP final
/// scheme (trapdoors hide the word, tables decrypt).
pub type FinalSwpPh = SwpPh<FinalScheme>;

impl FinalSwpPh {
    /// Builds the reference construction for `schema` under `master`,
    /// with the codec's default parameters (negligible false-positive
    /// rate).
    ///
    /// # Errors
    /// Fails only for schemas too narrow for the default check block.
    pub fn new(schema: Schema, master: &SecretKey) -> Result<Self, PhError> {
        let codec = WordCodec::new(schema);
        let params = codec.swp_params()?;
        Ok(SwpPh {
            scheme: FinalScheme::new(params, master),
            codec,
            name: "swp-final",
        })
    }

    /// Builds the construction with explicit SWP parameters (used by
    /// the false-positive experiments, which dial `check_bits` down to
    /// measurable rates).
    ///
    /// # Errors
    /// Fails when `params.word_len` does not match the codec's word
    /// length.
    pub fn with_params(
        schema: Schema,
        master: &SecretKey,
        params: SwpParams,
    ) -> Result<Self, PhError> {
        let codec = WordCodec::new(schema);
        if params.word_len != codec.word_len() {
            return Err(PhError::Swp(dbph_swp::SwpError::BadParams(
                "params.word_len must equal the codec word length",
            )));
        }
        Ok(SwpPh {
            scheme: FinalScheme::new(params, master),
            codec,
            name: "swp-final",
        })
    }
}

impl<S: SearchableScheme> SwpPh<S> {
    /// Wraps an arbitrary searchable scheme (used by the ablation
    /// benches over SWP schemes I–III).
    ///
    /// # Errors
    /// Fails when the scheme's word length does not match the schema's
    /// codec.
    pub fn over_scheme(schema: Schema, scheme: S, name: &'static str) -> Result<Self, PhError> {
        let codec = WordCodec::new(schema);
        if scheme.params().word_len != codec.word_len() {
            return Err(PhError::Swp(dbph_swp::SwpError::BadParams(
                "scheme word length must equal the codec word length",
            )));
        }
        Ok(SwpPh {
            scheme,
            codec,
            name,
        })
    }

    /// The underlying codec (exposed for the experiment binaries).
    #[must_use]
    pub fn codec(&self) -> &WordCodec {
        &self.codec
    }

    /// The underlying scheme's parameters.
    #[must_use]
    pub fn params(&self) -> &SwpParams {
        self.scheme.params()
    }

    /// Decrypts each document of `table` alongside its document id —
    /// the client-side primitive behind confirmed (two-phase) deletes,
    /// where Alex must map decrypted tuples back to server-side ids.
    ///
    /// # Errors
    /// Fails on corrupt ciphertexts or non-decryptable schemes.
    pub fn decrypt_docs(
        &self,
        table: &EncryptedTable,
    ) -> Result<Vec<(u64, dbph_relation::Tuple)>, PhError> {
        let mut out = Vec::with_capacity(table.docs.len());
        for (doc_id, cipher_words) in &table.docs {
            let mut words = Vec::with_capacity(cipher_words.len());
            for (i, cw) in cipher_words.iter().enumerate() {
                words.push(
                    self.scheme
                        .decrypt_word(Location::new(*doc_id, i as u32), cw)?,
                );
            }
            out.push((*doc_id, self.codec.decode_tuple(&words)?));
        }
        Ok(out)
    }

    fn check_schema(&self, relation: &Relation) -> Result<(), PhError> {
        if relation.schema() != self.codec.schema() {
            return Err(PhError::SchemaMismatch {
                expected: self.codec.schema().to_string(),
                actual: relation.schema().to_string(),
            });
        }
        Ok(())
    }

    fn encrypt_document(&self, doc_id: u64, words: &[Word]) -> Result<Vec<CipherWord>, PhError> {
        words
            .iter()
            .enumerate()
            .map(|(i, w)| {
                self.scheme
                    .encrypt_word(Location::new(doc_id, i as u32), w)
                    .map_err(PhError::from)
            })
            .collect()
    }
}

impl<S: SearchableScheme> DatabasePh for SwpPh<S> {
    type TableCt = EncryptedTable;
    type QueryCt = EncryptedQuery<S::Trapdoor>;

    fn scheme_name(&self) -> &'static str {
        self.name
    }

    fn schema(&self) -> &Schema {
        self.codec.schema()
    }

    fn encrypt_table(&self, relation: &Relation) -> Result<EncryptedTable, PhError> {
        self.check_schema(relation)?;
        let mut docs = Vec::with_capacity(relation.len());
        for (i, tuple) in relation.tuples().iter().enumerate() {
            let words = self.codec.encode_tuple(tuple)?;
            let doc_id = i as u64;
            docs.push((doc_id, self.encrypt_document(doc_id, &words)?));
        }
        Ok(EncryptedTable {
            params: *self.scheme.params(),
            docs,
            next_doc_id: relation.len() as u64,
        })
    }

    fn decrypt_table(&self, ciphertext: &EncryptedTable) -> Result<Relation, PhError> {
        let mut out = Relation::empty(self.codec.schema().clone());
        for (doc_id, cipher_words) in &ciphertext.docs {
            let mut words = Vec::with_capacity(cipher_words.len());
            for (i, cw) in cipher_words.iter().enumerate() {
                words.push(
                    self.scheme
                        .decrypt_word(Location::new(*doc_id, i as u32), cw)?,
                );
            }
            let tuple = self.codec.decode_tuple(&words)?;
            out.insert(tuple)?;
        }
        Ok(out)
    }

    fn encrypt_query(&self, query: &Query) -> Result<Self::QueryCt, PhError> {
        let words = self.codec.encode_query_terms(query)?;
        let terms = words
            .iter()
            .map(|w| self.scheme.trapdoor(w).map_err(PhError::from))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(EncryptedQuery { terms })
    }

    fn apply(table: &EncryptedTable, query: &Self::QueryCt) -> EncryptedTable {
        // ψ: keep the documents where *every* trapdoor matches at
        // least one word. Keyless — only `matches` is used.
        let docs = table
            .docs
            .iter()
            .filter(|(_, words)| {
                query
                    .terms
                    .iter()
                    .all(|trapdoor| words.iter().any(|cw| matches(&table.params, trapdoor, cw)))
            })
            .cloned()
            .collect();
        EncryptedTable {
            params: table.params,
            docs,
            next_doc_id: table.next_doc_id,
        }
    }

    fn ciphertext_len(table: &EncryptedTable) -> usize {
        table.len()
    }

    fn doc_ids(table: &EncryptedTable) -> Vec<u64> {
        table.doc_ids()
    }
}

impl<S: SearchableScheme> IncrementalPh for SwpPh<S> {
    fn append_tuple(
        &self,
        table: &mut EncryptedTable,
        tuple: &dbph_relation::Tuple,
    ) -> Result<(), PhError> {
        tuple.validate(self.codec.schema())?;
        let words = self.codec.encode_tuple(tuple)?;
        let doc_id = table.next_doc_id;
        let enc = self.encrypt_document(doc_id, &words)?;
        table.docs.push((doc_id, enc));
        table.next_doc_id += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ph::check_homomorphism_law;
    use dbph_relation::schema::emp_schema;
    use dbph_relation::{tuple, ExactSelect, Value};

    fn master() -> SecretKey {
        SecretKey::from_bytes([42u8; 32])
    }

    fn emp() -> Relation {
        Relation::from_tuples(
            emp_schema(),
            vec![
                tuple!["Montgomery", "HR", 7500i64],
                tuple!["Smith", "IT", 4900i64],
                tuple!["Jones", "IT", 1200i64],
                tuple!["Ng", "IT", 4900i64],
            ],
        )
        .unwrap()
    }

    fn ph() -> FinalSwpPh {
        FinalSwpPh::new(emp_schema(), &master()).unwrap()
    }

    #[test]
    fn table_roundtrip() {
        let ph = ph();
        let r = emp();
        let ct = ph.encrypt_table(&r).unwrap();
        assert_eq!(ct.len(), 4);
        let back = ph.decrypt_table(&ct).unwrap();
        assert!(r.same_multiset(&back));
    }

    #[test]
    fn homomorphism_law_for_paper_query() {
        // §3's worked example: σ_name:"Montgomery".
        check_homomorphism_law(&ph(), &emp(), &Query::select("name", "Montgomery")).unwrap();
    }

    #[test]
    fn homomorphism_law_across_queries() {
        let ph = ph();
        let r = emp();
        for q in [
            Query::select("dept", "IT"),
            Query::select("dept", "HR"),
            Query::select("salary", 4900i64),
            Query::select("salary", 1i64), // empty result
            Query::select("name", "Nobody"),
            Query::conjunction(vec![
                ExactSelect::new("dept", "IT"),
                ExactSelect::new("salary", 4900i64),
            ])
            .unwrap(),
        ] {
            check_homomorphism_law(&ph, &r, &q).unwrap();
        }
    }

    #[test]
    fn apply_is_keyless_and_returns_subset() {
        let ph = ph();
        let ct = ph.encrypt_table(&emp()).unwrap();
        let q = ph.encrypt_query(&Query::select("dept", "IT")).unwrap();
        // Note: apply is an associated function — no `ph` receiver.
        let sub = FinalSwpPh::apply(&ct, &q);
        assert_eq!(sub.len(), 3);
        let ids = sub.doc_ids();
        for id in &ids {
            assert!(ct.doc_ids().contains(id));
        }
    }

    #[test]
    fn result_decryption_filters_and_matches_plaintext() {
        let ph = ph();
        let r = emp();
        let q = Query::select("salary", 4900i64);
        let ct = ph.encrypt_table(&r).unwrap();
        let qct = ph.encrypt_query(&q).unwrap();
        let result = FinalSwpPh::apply(&ct, &qct);
        let decrypted = ph.decrypt_result(&result, &q).unwrap();
        let expected = dbph_relation::exec::select(&r, &q).unwrap();
        assert!(decrypted.same_multiset(&expected));
    }

    #[test]
    fn schema_mismatch_rejected() {
        let ph = ph();
        let other = Relation::empty(dbph_relation::schema::hospital_schema());
        assert!(matches!(
            ph.encrypt_table(&other),
            Err(PhError::SchemaMismatch { .. })
        ));
    }

    #[test]
    fn ciphertext_leaks_only_cardinality() {
        // Same-cardinality tables with different contents yield
        // ciphertexts of identical shape.
        let ph = ph();
        let r1 = Relation::from_tuples(
            emp_schema(),
            vec![tuple!["A", "HR", 1i64], tuple!["B", "HR", 1i64]],
        )
        .unwrap();
        let r2 = Relation::from_tuples(
            emp_schema(),
            vec![tuple!["C", "IT", 9i64], tuple!["C", "IT", 9i64]],
        )
        .unwrap();
        let c1 = ph.encrypt_table(&r1).unwrap();
        let c2 = ph.encrypt_table(&r2).unwrap();
        assert_eq!(c1.len(), c2.len());
        assert_eq!(c1.ciphertext_bytes(), c2.ciphertext_bytes());
        // And equal plaintext tuples within one table don't produce
        // equal ciphertext documents (q=0 equality hiding).
        assert_ne!(c2.docs[0].1, c2.docs[1].1);
    }

    #[test]
    fn incremental_append_preserves_law() {
        use crate::ph::IncrementalPh as _;
        let ph = ph();
        let mut ct = ph.encrypt_table(&emp()).unwrap();
        ph.append_tuple(&mut ct, &tuple!["Kim", "HR", 7500i64])
            .unwrap();
        assert_eq!(ct.len(), 5);

        let q = Query::select("salary", 7500i64);
        let qct = ph.encrypt_query(&q).unwrap();
        let result = FinalSwpPh::apply(&ct, &qct);
        let rel = ph.decrypt_result(&result, &q).unwrap();
        assert_eq!(rel.len(), 2);
        let names: Vec<_> = rel
            .tuples()
            .iter()
            .map(|t| t.get(0).unwrap().clone())
            .collect();
        assert!(names.contains(&Value::str("Kim")));
        assert!(names.contains(&Value::str("Montgomery")));
    }

    #[test]
    fn works_over_other_swp_schemes_for_search() {
        // Scheme II/III cannot decrypt, but ψ still works; the games
        // use exactly this.
        let codec_len = WordCodec::new(emp_schema()).word_len();
        let params = SwpParams::for_word_len(codec_len).unwrap();
        let scheme = dbph_swp::HiddenScheme::new(params, &master());
        let ph = SwpPh::over_scheme(emp_schema(), scheme, "swp-hidden").unwrap();
        let ct = ph.encrypt_table(&emp()).unwrap();
        let q = ph.encrypt_query(&Query::select("dept", "IT")).unwrap();
        let sub = SwpPh::<dbph_swp::HiddenScheme>::apply(&ct, &q);
        assert_eq!(sub.len(), 3);
        assert!(matches!(ph.decrypt_table(&ct), Err(PhError::Swp(_))));
    }

    #[test]
    fn empty_relation_roundtrip() {
        let ph = ph();
        let r = Relation::empty(emp_schema());
        let ct = ph.encrypt_table(&r).unwrap();
        assert!(ct.is_empty());
        let q = ph.encrypt_query(&Query::select("dept", "IT")).unwrap();
        let sub = FinalSwpPh::apply(&ct, &q);
        assert!(sub.is_empty());
        assert!(ph.decrypt_table(&ct).unwrap().is_empty());
    }

    #[test]
    fn wrong_key_cannot_decrypt() {
        let ph1 = FinalSwpPh::new(emp_schema(), &SecretKey::from_bytes([1u8; 32])).unwrap();
        let ph2 = FinalSwpPh::new(emp_schema(), &SecretKey::from_bytes([2u8; 32])).unwrap();
        let ct = ph1.encrypt_table(&emp()).unwrap();
        // Decryption under the wrong key either errors (decode fails)
        // or yields garbage that is not the original relation.
        if let Ok(r) = ph2.decrypt_table(&ct) {
            assert!(!r.same_multiset(&emp()))
        }
    }
}
