//! A small self-contained binary wire format.
//!
//! The outsourcing protocol must ship schemas, ciphertexts and
//! trapdoors as bytes — what Eve sees *is* these bytes, so the format
//! is part of the security model (it contains no plaintext beyond what
//! the scheme deliberately reveals). The workspace's dependency policy
//! admits `serde` (the framework) but no serializer crate, so this
//! module provides the codec: length-prefixed, little-endian,
//! versioned by construction (each message starts with a tag byte at
//! the protocol layer).
//!
//! Varints are deliberately avoided: fixed-width integers keep message
//! sizes independent of the values they carry, which matters when the
//! bytes are adversary-visible.

use crate::error::PhError;

/// Serializes a value into a byte buffer.
pub trait WireEncode {
    /// Appends this value's encoding to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Convenience: encodes into a fresh buffer.
    fn to_wire(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }
}

/// Deserializes a value from a [`Reader`].
pub trait WireDecode: Sized {
    /// Reads one value.
    ///
    /// # Errors
    /// Returns [`PhError::Wire`] on truncated or malformed input.
    fn decode(r: &mut Reader<'_>) -> Result<Self, PhError>;

    /// Convenience: decodes a whole buffer, requiring full consumption.
    ///
    /// # Errors
    /// Returns [`PhError::Wire`] on malformed input or trailing bytes.
    fn from_wire(bytes: &[u8]) -> Result<Self, PhError> {
        let mut r = Reader::new(bytes);
        let v = Self::decode(&mut r)?;
        r.expect_end()?;
        Ok(v)
    }
}

/// A cursor over received bytes.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes `n` raw bytes.
    ///
    /// # Errors
    /// Returns [`PhError::Wire`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], PhError> {
        if self.remaining() < n {
            return Err(PhError::Wire(format!(
                "truncated: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Asserts the buffer is fully consumed.
    ///
    /// # Errors
    /// Returns [`PhError::Wire`] when trailing bytes remain.
    pub fn expect_end(&self) -> Result<(), PhError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(PhError::Wire(format!(
                "{} trailing byte(s)",
                self.remaining()
            )))
        }
    }
}

// --- primitive impls -------------------------------------------------------

impl WireEncode for u8 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(*self);
    }
}

impl WireDecode for u8 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, PhError> {
        Ok(r.take(1)?[0])
    }
}

macro_rules! wire_int {
    ($ty:ty) => {
        impl WireEncode for $ty {
            fn encode(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.to_le_bytes());
            }
        }
        impl WireDecode for $ty {
            fn decode(r: &mut Reader<'_>) -> Result<Self, PhError> {
                let bytes = r.take(std::mem::size_of::<$ty>())?;
                let mut arr = [0u8; std::mem::size_of::<$ty>()];
                arr.copy_from_slice(bytes);
                Ok(<$ty>::from_le_bytes(arr))
            }
        }
    };
}

wire_int!(u16);
wire_int!(u32);
wire_int!(u64);
wire_int!(i64);

impl WireEncode for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(*self));
    }
}

impl WireDecode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self, PhError> {
        match r.take(1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(PhError::Wire(format!("invalid bool byte {b}"))),
        }
    }
}

impl WireEncode for usize {
    fn encode(&self, buf: &mut Vec<u8>) {
        (*self as u64).encode(buf);
    }
}

impl WireDecode for usize {
    fn decode(r: &mut Reader<'_>) -> Result<Self, PhError> {
        let v = u64::decode(r)?;
        usize::try_from(v).map_err(|_| PhError::Wire(format!("usize overflow: {v}")))
    }
}

impl WireEncode for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.len().encode(buf);
        buf.extend_from_slice(self.as_bytes());
    }
}

impl WireDecode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, PhError> {
        let len = usize::decode(r)?;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| PhError::Wire("invalid UTF-8".into()))
    }
}

impl<T: WireEncode> WireEncode for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.len().encode(buf);
        for item in self {
            item.encode(buf);
        }
    }
}

impl<T: WireDecode> WireDecode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, PhError> {
        let len = usize::decode(r)?;
        // Guard against length bombs: each element needs ≥ 1 byte.
        if len > r.remaining() {
            return Err(PhError::Wire(format!(
                "length {len} exceeds remaining input"
            )));
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: WireEncode> WireEncode for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
}

impl<T: WireDecode> WireDecode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, PhError> {
        match r.take(1)?[0] {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            b => Err(PhError::Wire(format!("invalid option tag {b}"))),
        }
    }
}

impl<A: WireEncode, B: WireEncode> WireEncode for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
}

impl<A: WireDecode, B: WireDecode> WireDecode for (A, B) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, PhError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

/// Exact encoded size of one document `(id, words)` as an element of
/// an [`crate::swp_ph::EncryptedTable`]'s `docs` vector, given the
/// stored byte length of each word.
///
/// This is *the* cost model for chunk sizing
/// ([`crate::storage::ShardedTable::fetch_chunk`] budgets against the
/// transport's frame cap with it), so it lives here next to the codec
/// it mirrors: a document encodes as a fixed-width `u64` id (8), a
/// `u64` word count (8), and per word a `u64` length prefix (8) plus
/// the bytes — fixed-width throughout, no varints, so the size depends
/// only on the word lengths. `wire::tests::doc_cost_matches_encoder`
/// pins it to the real encoder, irregular-length words included.
#[must_use]
pub fn encoded_doc_len(word_lens: impl Iterator<Item = usize>) -> u64 {
    16 + word_lens.map(|len| 8 + len as u64).sum::<u64>()
}

// --- domain impls ----------------------------------------------------------

impl WireEncode for dbph_swp::SwpParams {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.word_len.encode(buf);
        self.check_len.encode(buf);
        self.check_bits.encode(buf);
    }
}

impl WireDecode for dbph_swp::SwpParams {
    fn decode(r: &mut Reader<'_>) -> Result<Self, PhError> {
        let word_len = usize::decode(r)?;
        let check_len = usize::decode(r)?;
        let check_bits = u32::decode(r)?;
        dbph_swp::SwpParams::new(word_len, check_len, check_bits).map_err(PhError::from)
    }
}

impl WireEncode for dbph_swp::CipherWord {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
}

impl WireDecode for dbph_swp::CipherWord {
    fn decode(r: &mut Reader<'_>) -> Result<Self, PhError> {
        Ok(dbph_swp::CipherWord(Vec::<u8>::decode(r)?))
    }
}

impl WireEncode for crate::swp_ph::EncryptedTable {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.params.encode(buf);
        self.docs.encode(buf);
        self.next_doc_id.encode(buf);
    }
}

impl WireDecode for crate::swp_ph::EncryptedTable {
    fn decode(r: &mut Reader<'_>) -> Result<Self, PhError> {
        Ok(crate::swp_ph::EncryptedTable {
            params: dbph_swp::SwpParams::decode(r)?,
            docs: Vec::decode(r)?,
            next_doc_id: u64::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: WireEncode + WireDecode + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_wire();
        assert_eq!(T::from_wire(&bytes).unwrap(), v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(0xABCDu16);
        roundtrip(0xDEADBEEFu32);
        roundtrip(u64::MAX);
        roundtrip(i64::MIN);
        roundtrip(-1i64);
        roundtrip(true);
        roundtrip(false);
        roundtrip(12345usize);
        roundtrip(String::from("héllo wörld"));
        roundtrip(String::new());
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(vec![1u8, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip(vec![String::from("a"), String::from("bb")]);
        roundtrip(Option::<u32>::None);
        roundtrip(Some(42u32));
        roundtrip((7u64, String::from("pair")));
        roundtrip(vec![(1u64, vec![1u8, 2]), (2u64, vec![])]);
    }

    #[test]
    fn truncation_detected() {
        let bytes = 0xDEADBEEFu32.to_wire();
        assert!(u32::from_wire(&bytes[..3]).is_err());
        let bytes = String::from("hello").to_wire();
        assert!(String::from_wire(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut bytes = 7u32.to_wire();
        bytes.push(0);
        assert!(matches!(u32::from_wire(&bytes), Err(PhError::Wire(_))));
    }

    #[test]
    fn invalid_enum_bytes_rejected() {
        assert!(bool::from_wire(&[2]).is_err());
        assert!(Option::<u8>::from_wire(&[9, 1]).is_err());
    }

    #[test]
    fn length_bomb_rejected() {
        // A Vec<u64> claiming 2^60 elements in a 16-byte message must
        // fail fast, not attempt a huge allocation.
        let mut bytes = Vec::new();
        (1u64 << 60).encode(&mut bytes);
        bytes.extend_from_slice(&[0u8; 8]);
        assert!(Vec::<u64>::from_wire(&bytes).is_err());
    }

    #[test]
    fn bad_utf8_rejected() {
        let mut bytes = Vec::new();
        2usize.encode(&mut bytes);
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        assert!(String::from_wire(&bytes).is_err());
    }

    #[test]
    fn swp_params_roundtrip_and_validation() {
        let p = dbph_swp::SwpParams::new(13, 4, 32).unwrap();
        roundtrip(p);
        // Decoding must re-validate: corrupt check_bits.
        let mut bytes = p.to_wire();
        let n = bytes.len();
        bytes[n - 4..].copy_from_slice(&999u32.to_le_bytes());
        assert!(dbph_swp::SwpParams::from_wire(&bytes).is_err());
    }

    #[test]
    fn encrypted_table_roundtrip() {
        let table = crate::swp_ph::EncryptedTable {
            params: dbph_swp::SwpParams::new(13, 4, 32).unwrap(),
            docs: vec![
                (
                    0,
                    vec![
                        dbph_swp::CipherWord(vec![1; 13]),
                        dbph_swp::CipherWord(vec![2; 13]),
                    ],
                ),
                (1, vec![dbph_swp::CipherWord(vec![3; 13])]),
            ],
            next_doc_id: 2,
        };
        roundtrip(table);
    }

    #[test]
    fn doc_cost_matches_encoder() {
        // The chunk-sizing cost model must equal the real encoder's
        // per-document size delta — including empty documents and
        // irregular-length words (side lists longer or shorter than
        // the slot width).
        let docs: Vec<(u64, Vec<dbph_swp::CipherWord>)> = vec![
            (0, vec![]),
            (1, vec![dbph_swp::CipherWord(vec![1; 13])]),
            (
                7,
                vec![
                    dbph_swp::CipherWord(vec![2; 13]),
                    dbph_swp::CipherWord(vec![3; 5]), // irregular: short
                    dbph_swp::CipherWord(vec![4; 250]), // irregular: long
                    dbph_swp::CipherWord(vec![]),     // irregular: empty
                ],
            ),
        ];
        let mut prev = Vec::<(u64, Vec<dbph_swp::CipherWord>)>::new()
            .to_wire()
            .len();
        let mut acc = Vec::new();
        for doc in docs {
            let predicted = encoded_doc_len(doc.1.iter().map(|w| w.0.len()));
            acc.push(doc);
            let now = acc.to_wire().len();
            assert_eq!(predicted, (now - prev) as u64);
            prev = now;
        }
    }

    #[test]
    fn fixed_width_integers_hide_magnitude() {
        // Message sizes must not depend on encoded values.
        assert_eq!(1u64.to_wire().len(), u64::MAX.to_wire().len());
        assert_eq!((-1i64).to_wire().len(), 0i64.to_wire().len());
    }
}
