//! Columnar per-shard cipher-word storage.
//!
//! The boxed layout — one `Vec<u8>` per cipher word inside a
//! `Vec<CipherWord>` per document — scatters a shard's ciphertext over
//! the heap: every SWP check starts with a pointer chase and the scan
//! kernel's 4-lane pipeline ([`dbph_swp::ScanKernel`]) would stall on
//! cache misses instead of filling issue slots. A [`WordArena`] stores
//! a whole shard's words in **one contiguous fixed-width slot buffer**
//! (stride = the table's `word_len`) with per-document offsets, so a
//! full-shard scan is a linear walk and a survivors-only conjunctive
//! pass stays index-addressable.
//!
//! Fidelity is non-negotiable: the wire can deliver documents whose
//! words do *not* have the table's word length (they can never match —
//! the SWP check rejects length mismatches — but `FetchAll` must
//! return them byte-identically). Such *irregular* words are stored
//! verbatim in a side list and addressed through the same per-word
//! reference array as the regular slots, so reassembled documents are
//! exactly the bytes that arrived, in order, whatever their shape.
//! The representation is canonical — a function of `(word_len, docs)`
//! alone, independent of the append/delete history — so derived
//! equality is document equality.

use dbph_swp::CipherWord;

use crate::storage::Doc;

/// Tag bit distinguishing irregular-word references from slot ranks.
const IRREGULAR_BIT: u32 = 1 << 31;

/// A shard's documents in columnar form: ids, per-doc word boundaries,
/// and one contiguous fixed-width buffer of cipher-word slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WordArena {
    /// Slot stride in bytes (the table's `word_len`).
    word_len: usize,
    /// Document ids, in document order.
    doc_ids: Vec<u64>,
    /// Per-document word boundaries: document `i`'s words are
    /// `refs[offsets[i]..offsets[i + 1]]`. Length `doc_ids.len() + 1`.
    offsets: Vec<u32>,
    /// Per logical word: a rank into `slots` (stride `word_len`), or
    /// `IRREGULAR_BIT | rank` into `irregular`.
    refs: Vec<u32>,
    /// Regular word bytes, fixed stride, in logical word order.
    slots: Vec<u8>,
    /// Words whose length differs from `word_len`, stored verbatim.
    irregular: Vec<Vec<u8>>,
}

impl WordArena {
    /// An empty arena with the given slot width.
    #[must_use]
    pub fn new(word_len: usize) -> Self {
        WordArena {
            word_len,
            doc_ids: Vec::new(),
            offsets: vec![0],
            refs: Vec::new(),
            slots: Vec::new(),
            irregular: Vec::new(),
        }
    }

    /// Builds an arena from documents in order.
    #[must_use]
    pub fn from_docs<I: IntoIterator<Item = Doc>>(word_len: usize, docs: I) -> Self {
        let mut arena = WordArena::new(word_len);
        for (id, words) in docs {
            arena.push(id, &words);
        }
        arena
    }

    /// The slot stride in bytes.
    #[must_use]
    pub fn word_len(&self) -> usize {
        self.word_len
    }

    /// Number of documents.
    #[must_use]
    pub fn len(&self) -> usize {
        self.doc_ids.len()
    }

    /// Whether the arena holds no documents.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.doc_ids.is_empty()
    }

    /// Total number of stored words.
    #[must_use]
    pub fn word_count(&self) -> usize {
        self.refs.len()
    }

    /// Whether any stored word deviates from the slot width. When
    /// false, every reference is a plain slot rank (in fact the
    /// identity, by construction) and scans touch only `slots`.
    #[must_use]
    pub fn has_irregular(&self) -> bool {
        !self.irregular.is_empty()
    }

    /// Id of document `i`.
    #[must_use]
    pub fn doc_id(&self, i: usize) -> u64 {
        self.doc_ids[i]
    }

    /// The logical word indices belonging to document `i` (for use
    /// with [`Self::word`] / [`Self::regular_slot`]).
    #[must_use]
    pub fn word_range(&self, i: usize) -> std::ops::Range<usize> {
        self.offsets[i] as usize..self.offsets[i + 1] as usize
    }

    /// Exact bytes of logical word `w`, whatever its length.
    #[must_use]
    pub fn word(&self, w: usize) -> &[u8] {
        let r = self.refs[w];
        if r & IRREGULAR_BIT == 0 {
            let start = r as usize * self.word_len;
            &self.slots[start..start + self.word_len]
        } else {
            &self.irregular[(r & !IRREGULAR_BIT) as usize]
        }
    }

    /// The fixed-width slot of logical word `w`, or `None` if the word
    /// is irregular (wrong length ⇒ it can never match a scan anyway).
    #[must_use]
    pub fn regular_slot(&self, w: usize) -> Option<&[u8]> {
        let r = self.refs[w];
        (r & IRREGULAR_BIT == 0).then(|| {
            let start = r as usize * self.word_len;
            &self.slots[start..start + self.word_len]
        })
    }

    /// Reassembles document `i` exactly as it was stored.
    #[must_use]
    pub fn doc(&self, i: usize) -> Doc {
        let words = self
            .word_range(i)
            .map(|w| CipherWord(self.word(w).to_vec()))
            .collect();
        (self.doc_ids[i], words)
    }

    /// Reassembles every document, in order, byte-identical to what
    /// was pushed.
    #[must_use]
    pub fn to_docs(&self) -> Vec<Doc> {
        (0..self.len()).map(|i| self.doc(i)).collect()
    }

    /// Stores one word's bytes and its reference — the single point
    /// where the regular/irregular classification happens (shared by
    /// [`Self::push`], [`Self::retain`], and [`Self::append_range`]).
    ///
    /// `pub(crate)` for the durable log's recovery decoder, which
    /// streams word slices straight out of a record buffer and must
    /// pair every run of `push_word` calls with one [`Self::seal_doc`].
    ///
    /// # Panics
    /// Panics if the shard reaches 2³¹ regular or irregular words —
    /// the `u32` reference encoding's ceiling. At ≥ 2 bytes per word
    /// that is a ≥ 4 GiB shard; split the table first.
    pub(crate) fn push_word(&mut self, bytes: &[u8]) {
        let rank = if bytes.len() == self.word_len {
            let rank = self.slots.len() / self.word_len.max(1);
            assert!(rank < IRREGULAR_BIT as usize, "shard exceeds 2^31 words");
            self.slots.extend_from_slice(bytes);
            rank as u32
        } else {
            let rank = self.irregular.len();
            assert!(rank < IRREGULAR_BIT as usize, "shard exceeds 2^31 words");
            self.irregular.push(bytes.to_vec());
            IRREGULAR_BIT | rank as u32
        };
        self.refs.push(rank);
    }

    /// Seals the currently buffered words as document `doc_id`.
    pub(crate) fn seal_doc(&mut self, doc_id: u64) {
        self.doc_ids.push(doc_id);
        self.offsets.push(self.refs.len() as u32);
    }

    /// Appends one document (preserving order).
    pub fn push(&mut self, doc_id: u64, words: &[CipherWord]) {
        for word in words {
            self.push_word(&word.0);
        }
        self.seal_doc(doc_id);
    }

    /// Appends one document from raw word byte slices — the
    /// wire-decode and log-recovery path: callers hand over borrowed
    /// slices straight out of a received buffer, so a table streams
    /// into columnar storage without ever materializing a boxed
    /// [`CipherWord`] per word.
    pub fn push_raw<'a>(&mut self, doc_id: u64, words: impl IntoIterator<Item = &'a [u8]>) {
        for word in words {
            self.push_word(word);
        }
        self.seal_doc(doc_id);
    }

    /// Appends documents `range` of `src` verbatim — the repartition
    /// repack path: word bytes are copied arena-to-arena without ever
    /// materializing boxed documents.
    ///
    /// # Panics
    /// Panics if the slot widths differ (repartition never mixes
    /// tables).
    pub fn append_range(&mut self, src: &WordArena, range: std::ops::Range<usize>) {
        assert_eq!(self.word_len, src.word_len, "mixed slot widths");
        for i in range {
            for w in src.word_range(i) {
                self.push_word(src.word(w));
            }
            self.seal_doc(src.doc_ids[i]);
        }
    }

    /// Keeps only the documents whose id satisfies `keep`, preserving
    /// order; the arena is rebuilt into canonical form.
    pub fn retain(&mut self, mut keep: impl FnMut(u64) -> bool) {
        let mut rebuilt = WordArena::new(self.word_len);
        rebuilt.doc_ids.reserve(self.len());
        rebuilt.refs.reserve(self.refs.len());
        rebuilt.slots.reserve(self.slots.len());
        for i in 0..self.len() {
            let id = self.doc_ids[i];
            if !keep(id) {
                continue;
            }
            for w in self.word_range(i) {
                rebuilt.push_word(self.word(w));
            }
            rebuilt.seal_doc(id);
        }
        *self = rebuilt;
    }

    /// Total ciphertext bytes (words only, like
    /// [`crate::swp_ph::EncryptedTable::ciphertext_bytes`]).
    #[must_use]
    pub fn ciphertext_bytes(&self) -> usize {
        self.slots.len() + self.irregular.iter().map(Vec::len).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(id: u64, lens: &[usize]) -> Doc {
        (
            id,
            lens.iter()
                .enumerate()
                .map(|(i, &l)| CipherWord(vec![(id as u8) ^ (i as u8); l]))
                .collect(),
        )
    }

    #[test]
    fn roundtrips_regular_docs() {
        let docs: Vec<Doc> = (0..5).map(|i| doc(i, &[7, 7, 7])).collect();
        let arena = WordArena::from_docs(7, docs.clone());
        assert_eq!(arena.len(), 5);
        assert_eq!(arena.word_count(), 15);
        assert!(!arena.has_irregular());
        assert_eq!(arena.to_docs(), docs);
        assert_eq!(arena.ciphertext_bytes(), 15 * 7);
        for w in 0..15 {
            assert_eq!(arena.regular_slot(w).unwrap(), arena.word(w));
        }
    }

    #[test]
    fn preserves_irregular_words_verbatim() {
        // Lengths 0, short, exact, long — all must round-trip.
        let docs = vec![doc(1, &[5, 0, 3]), doc(2, &[9, 5]), doc(3, &[])];
        let arena = WordArena::from_docs(5, docs.clone());
        assert!(arena.has_irregular());
        assert_eq!(arena.to_docs(), docs);
        assert_eq!(arena.ciphertext_bytes(), 5 + 3 + 9 + 5);
        // Regular slots resolve only for exact-width words.
        assert!(arena.regular_slot(0).is_some());
        assert!(arena.regular_slot(1).is_none());
        assert!(arena.regular_slot(2).is_none());
        assert!(arena.regular_slot(3).is_none());
        assert!(arena.regular_slot(4).is_some());
    }

    #[test]
    fn retain_preserves_order_and_bytes() {
        let docs: Vec<Doc> = (0..10)
            .map(|i| doc(i, &[4, if i % 3 == 0 { 2 } else { 4 }]))
            .collect();
        let mut arena = WordArena::from_docs(4, docs.clone());
        arena.retain(|id| id % 2 == 0);
        let expect: Vec<Doc> = docs.iter().filter(|(id, _)| id % 2 == 0).cloned().collect();
        assert_eq!(arena.to_docs(), expect);
        // Canonical form: equal to an arena built directly.
        assert_eq!(arena, WordArena::from_docs(4, expect));
    }

    #[test]
    fn push_after_retain_keeps_canonical_equality() {
        let mut a = WordArena::from_docs(3, vec![doc(0, &[3]), doc(1, &[3, 1]), doc(2, &[3])]);
        a.retain(|id| id != 1);
        a.push(5, &[CipherWord(vec![9; 3]), CipherWord(vec![8; 2])]);
        let b = WordArena::from_docs(
            3,
            vec![
                doc(0, &[3]),
                doc(2, &[3]),
                (5, vec![CipherWord(vec![9; 3]), CipherWord(vec![8; 2])]),
            ],
        );
        assert_eq!(a, b);
    }

    #[test]
    fn push_raw_equals_boxed_push() {
        // The zero-boxing ingest path must build the identical
        // canonical arena, irregular lengths included.
        let docs = vec![doc(0, &[4, 4]), doc(1, &[4, 2, 6]), doc(2, &[])];
        let boxed = WordArena::from_docs(4, docs.clone());
        let mut raw = WordArena::new(4);
        for (id, words) in &docs {
            raw.push_raw(*id, words.iter().map(|w| w.0.as_slice()));
        }
        assert_eq!(raw, boxed);
        assert_eq!(raw.to_docs(), docs);
    }

    #[test]
    fn append_range_repacks_verbatim() {
        // The repartition path: arbitrary sub-ranges (with irregular
        // words) copied arena-to-arena must equal a direct build.
        let docs: Vec<Doc> = (0..9)
            .map(|i| doc(i, &[4, if i % 2 == 0 { 4 } else { 6 }]))
            .collect();
        let src = WordArena::from_docs(4, docs.clone());
        let mut dst = WordArena::new(4);
        dst.append_range(&src, 0..3);
        dst.append_range(&src, 3..3); // empty range is a no-op
        dst.append_range(&src, 3..9);
        assert_eq!(dst, src);
        let mut partial = WordArena::new(4);
        partial.append_range(&src, 2..5);
        assert_eq!(partial.to_docs(), docs[2..5].to_vec());
    }

    #[test]
    fn word_ranges_address_documents() {
        let arena = WordArena::from_docs(2, vec![doc(7, &[2, 2]), doc(8, &[]), doc(9, &[2])]);
        assert_eq!(arena.word_range(0), 0..2);
        assert_eq!(arena.word_range(1), 2..2);
        assert_eq!(arena.word_range(2), 2..3);
        assert_eq!(arena.doc_id(1), 8);
        assert_eq!(arena.doc(1).1.len(), 0);
    }
}
