//! Transcript-invisible telemetry: counters, gauges, log2 latency
//! histograms, and a versioned snapshot the operator can pull.
//!
//! # Leakage stance
//!
//! Every metric in this module is a pure function of work Eve already
//! performs on her own hardware: how long *her* fsync took, how deep
//! *her* executor queue got, how many frames *her* sockets moved.
//! Nothing here derives from Alex's plaintext, keys, or query terms
//! beyond what the existing adversary transcript already records.
//! The discipline is enforced the same way sharding and durability
//! were: the telemetry test matrix pins responses, response ordering,
//! observer transcripts, and durable segment bytes byte-identical
//! with collection enabled vs disabled.
//!
//! # Cost model
//!
//! All primitives are relaxed atomics — an increment is one
//! uncontended `fetch_add(1, Relaxed)`. Timed sections pay exactly
//! one [`Instant`] pair, and only when the registry is enabled; the
//! enabled check itself is a single relaxed load. There is no
//! registry map, no string hashing, and no allocation on the hot
//! path: every metric is a named struct field, and strings appear
//! only at snapshot time.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use crate::error::PhError;
use crate::wire::{Reader, WireDecode, WireEncode};

/// Version stamp carried by every [`StatsSnapshot`] on the wire.
///
/// Bump when the snapshot encoding changes shape; decoders reject
/// versions they do not understand rather than misparse.
pub const STATS_VERSION: u16 = 1;

/// Histogram bucket count: bucket `b` holds samples whose bit length
/// is `b` (i.e. values in `[2^(b-1), 2^b)`), bucket 0 holds zeros.
/// 65 buckets cover the full `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Number of request-kind slots in [`Telemetry::requests`]: slot `k`
/// times requests whose leading wire tag is `k`; slot 0 absorbs
/// malformed/unknown frames. Sized one past the highest client tag.
pub const REQUEST_KINDS: usize = 14;

/// A monotonically increasing counter (relaxed atomics).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (relaxed atomics).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one, saturating at zero (a disable/enable flip mid
    /// connection must not wrap the live-connection gauge).
    pub fn dec(&self) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Sets the gauge to `v`.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (high-water marks).
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Fixed-bucket log2 histogram with total count, sum, and max.
///
/// Bucket boundaries are powers of two, so a recorded value lands in
/// its bucket with two instructions (`leading_zeros` + index) and the
/// snapshot can derive p50/p95/p99 to within a factor of two — ample
/// for spotting an fsync stall or a retry storm, and free of the
/// allocation/locking a sampling reservoir would need.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index for a sample: its bit length (0 for 0).
#[inline]
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `b` (`2^b - 1`; 0 for bucket 0).
#[inline]
fn bucket_upper(b: usize) -> u64 {
    if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating past ~584 years).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the histogram (sparse buckets).
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((u8::try_from(i).expect("<=64"), n));
            }
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A frozen copy of one [`Histogram`], wire-encodable and queryable
/// for approximate quantiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (mean = `sum / count`).
    pub sum: u64,
    /// Largest sample seen (exact, not bucketed).
    pub max: u64,
    /// Sparse `(bucket_index, count)` pairs, ascending, zeros elided.
    pub buckets: Vec<(u8, u64)>,
}

impl HistogramSnapshot {
    /// Approximate quantile `q` in `[0, 1]`: the inclusive upper
    /// bound of the bucket containing the `ceil(q * count)`-th
    /// sample, clamped to the exact observed max. Returns 0 when the
    /// histogram is empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(b, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_upper(usize::from(b)).min(self.max);
            }
        }
        self.max
    }
}

impl WireEncode for HistogramSnapshot {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.count.encode(buf);
        self.sum.encode(buf);
        self.max.encode(buf);
        self.buckets.encode(buf);
    }
}

impl WireDecode for HistogramSnapshot {
    fn decode(r: &mut Reader<'_>) -> Result<Self, PhError> {
        Ok(Self {
            count: u64::decode(r)?,
            sum: u64::decode(r)?,
            max: u64::decode(r)?,
            buckets: Vec::<(u8, u64)>::decode(r)?,
        })
    }
}

/// One sampled metric value inside a [`StatsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotonic counter sample.
    Counter(u64),
    /// Gauge sample.
    Gauge(u64),
    /// Histogram sample.
    Histogram(HistogramSnapshot),
}

impl WireEncode for MetricValue {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            MetricValue::Counter(v) => {
                buf.push(0);
                v.encode(buf);
            }
            MetricValue::Gauge(v) => {
                buf.push(1);
                v.encode(buf);
            }
            MetricValue::Histogram(h) => {
                buf.push(2);
                h.encode(buf);
            }
        }
    }
}

impl WireDecode for MetricValue {
    fn decode(r: &mut Reader<'_>) -> Result<Self, PhError> {
        match u8::decode(r)? {
            0 => Ok(MetricValue::Counter(u64::decode(r)?)),
            1 => Ok(MetricValue::Gauge(u64::decode(r)?)),
            2 => Ok(MetricValue::Histogram(HistogramSnapshot::decode(r)?)),
            k => Err(PhError::Wire(format!("unknown metric kind {k}"))),
        }
    }
}

/// A point-in-time dump of a server's full metrics registry,
/// carried by `ServerResponse::StatsSnapshot`.
///
/// Like `Status`, fetching one records **no** `ServerEvent`s: the
/// operator probe never perturbs the adversary transcript.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Encoding version, [`STATS_VERSION`].
    pub version: u16,
    /// `(name, value)` pairs in stable registry order.
    pub metrics: Vec<(String, MetricValue)>,
}

impl StatsSnapshot {
    /// Looks up a metric by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Counter/gauge value by name (None for histograms or misses).
    #[must_use]
    pub fn scalar(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => Some(*v),
            MetricValue::Histogram(_) => None,
        }
    }

    /// Histogram by name.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.get(name)? {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }
}

impl WireEncode for StatsSnapshot {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.version.encode(buf);
        self.metrics.encode(buf);
    }
}

impl WireDecode for StatsSnapshot {
    fn decode(r: &mut Reader<'_>) -> Result<Self, PhError> {
        let version = u16::decode(r)?;
        if version != STATS_VERSION {
            return Err(PhError::Wire(format!(
                "unsupported stats version {version} (speak {STATS_VERSION})"
            )));
        }
        Ok(Self {
            version,
            metrics: Vec::<(String, MetricValue)>::decode(r)?,
        })
    }
}

impl std::fmt::Display for StatsSnapshot {
    /// Text exposition: one `<kind> <name> <value>` line per metric;
    /// histograms render count/mean/p50/p95/p99/max in nanoseconds
    /// or raw units as recorded.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "# stats v{}", self.version)?;
        for (name, value) in &self.metrics {
            match value {
                MetricValue::Counter(v) => writeln!(f, "counter   {name} {v}")?,
                MetricValue::Gauge(v) => writeln!(f, "gauge     {name} {v}")?,
                MetricValue::Histogram(h) => {
                    let mean = h.sum.checked_div(h.count).unwrap_or(0);
                    writeln!(
                        f,
                        "histogram {name} count={} mean={} p50={} p95={} p99={} max={}",
                        h.count,
                        mean,
                        h.quantile(0.50),
                        h.quantile(0.95),
                        h.quantile(0.99),
                        h.max,
                    )?;
                }
            }
        }
        Ok(())
    }
}

/// Human name for a request-kind slot (leading wire tag).
#[must_use]
pub fn request_kind_name(tag: u8) -> &'static str {
    match tag {
        1 => "create",
        2 => "query",
        3 => "fetch_all",
        4 => "append",
        5 => "drop",
        6 => "delete",
        7 => "query_batch",
        8 => "append_batch",
        9 => "fetch_chunk",
        10 => "tagged",
        11 => "ping",
        12 => "repl_pull",
        13 => "stats",
        _ => "other",
    }
}

/// The per-server metrics registry.
///
/// Every field is a plain struct member — no interior map, no name
/// lookup on the hot path. A `Server` owns one `Arc<Telemetry>`
/// shared by its clones, the durable log, the net front-ends, and
/// the replica runtime; `PooledClient` owns a separate instance for
/// the client-side retry plane.
#[derive(Debug, Default)]
pub struct Telemetry {
    enabled: AtomicBool,

    /// Request latency histograms indexed by leading wire tag
    /// (nanoseconds; slot 0 = malformed/unknown frames).
    pub requests: [Histogram; REQUEST_KINDS],
    /// Tagged mutations admitted as first-sighted.
    pub dedup_fresh: Counter,
    /// Tagged mutations answered from the dedup window (retries).
    pub dedup_replays: Counter,
    /// Tagged mutations rejected as older than the window.
    pub dedup_stale: Counter,
    /// Queries planned as full trapdoor scans.
    pub plan_scan_queries: Counter,
    /// Queries planned through the encrypted inverted index.
    pub plan_probe_queries: Counter,
    /// Index probes answered from a cached posting prefix.
    pub index_probe_hits: Counter,
    /// Index probes that had no cached prefix.
    pub index_probe_misses: Counter,
    /// Posting-list lengths returned by index probes.
    pub index_posting_len: Histogram,
    /// Docs each probe verified beyond its cached prefix
    /// (delta-scan length).
    pub index_delta_len: Histogram,

    /// Nanoseconds per durable-log `fsync`.
    pub fsync_nanos: Histogram,
    /// Nanoseconds writers wait at the group-commit barrier.
    pub commit_wait_nanos: Histogram,
    /// Records covered per group-commit sync (window occupancy).
    pub commit_window_records: Histogram,

    /// Connections currently being served across net front-ends.
    pub net_conns_live: Gauge,
    /// Connections accepted since start.
    pub net_conns_accepted: Counter,
    /// Connections reaped by the idle-timeout sweeps.
    pub net_conns_reaped: Counter,
    /// Request frames decoded.
    pub net_frames_in: Counter,
    /// Response frames written.
    pub net_frames_out: Counter,
    /// Request bytes read (payload + length prefix).
    pub net_bytes_in: Counter,
    /// Response bytes written (payload + length prefix).
    pub net_bytes_out: Counter,
    /// Times the event loop paused reads on a slow consumer.
    pub net_backpressure: Counter,
    /// High-water mark of bytes buffered in one frame assembler.
    pub net_assembler_high_water: Gauge,
    /// `ReplPull` frames refused on the event-loop front-end.
    pub net_repl_pull_refused: Counter,

    /// Replication chunks served to followers (primary side).
    pub repl_chunks_shipped: Counter,
    /// Replication bytes served to followers (primary side).
    pub repl_bytes_shipped: Counter,
    /// Times a `ReplPull` parked in the long-poll wait.
    pub repl_longpoll_parks: Counter,
    /// Follower resyncs (tail fell behind a compaction).
    pub repl_resyncs: Counter,
    /// Replication chunks applied by this node as a follower.
    pub repl_chunks_applied: Counter,

    /// Client-side: retry attempts beyond each first send.
    pub client_retries: Counter,
    /// Client-side: total nanoseconds slept in retry backoff.
    pub client_backoff_nanos: Counter,
    /// Client-side: explicit redirects to a promoted primary.
    pub client_failovers: Counter,
    /// Client-side: stale pooled connections replaced by fresh dials.
    pub client_reconnects: Counter,
}

impl Telemetry {
    /// A fresh registry with collection enabled.
    #[must_use]
    pub fn new() -> Self {
        let t = Self::default();
        t.enabled.store(true, Ordering::Relaxed);
        t
    }

    /// Whether collection is currently enabled (one relaxed load —
    /// every instrumentation site checks this before touching a
    /// metric or taking a timestamp).
    #[inline]
    #[must_use]
    pub fn on(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns collection on or off at runtime. Off freezes every
    /// counter and histogram; it exists so tests and benches can
    /// compare instrumented vs uninstrumented behaviour on the same
    /// binary.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// The request-latency histogram for a leading wire tag.
    #[inline]
    #[must_use]
    pub fn request_latency(&self, tag: u8) -> &Histogram {
        let slot = usize::from(tag);
        &self.requests[if slot < REQUEST_KINDS { slot } else { 0 }]
    }

    /// Samples every registry metric into `(name, value)` pairs in
    /// stable declaration order. The server layers its own sampled
    /// sources (durable log, executor) on top of this.
    #[must_use]
    pub fn snapshot_metrics(&self) -> Vec<(String, MetricValue)> {
        let mut m: Vec<(String, MetricValue)> = Vec::new();
        let c = |m: &mut Vec<(String, MetricValue)>, name: &str, v: &Counter| {
            m.push((name.to_string(), MetricValue::Counter(v.get())));
        };
        let g = |m: &mut Vec<(String, MetricValue)>, name: &str, v: &Gauge| {
            m.push((name.to_string(), MetricValue::Gauge(v.get())));
        };
        let h = |m: &mut Vec<(String, MetricValue)>, name: &str, v: &Histogram| {
            m.push((name.to_string(), MetricValue::Histogram(v.snapshot())));
        };
        for (i, hist) in self.requests.iter().enumerate() {
            let tag = u8::try_from(i).expect("small");
            h(
                &mut m,
                &format!("req_{}_nanos", request_kind_name(tag)),
                hist,
            );
        }
        c(&mut m, "dedup_fresh", &self.dedup_fresh);
        c(&mut m, "dedup_replays", &self.dedup_replays);
        c(&mut m, "dedup_stale", &self.dedup_stale);
        c(&mut m, "plan_scan_queries", &self.plan_scan_queries);
        c(&mut m, "plan_probe_queries", &self.plan_probe_queries);
        c(&mut m, "index_probe_hits", &self.index_probe_hits);
        c(&mut m, "index_probe_misses", &self.index_probe_misses);
        h(&mut m, "index_posting_len", &self.index_posting_len);
        h(&mut m, "index_delta_len", &self.index_delta_len);
        h(&mut m, "fsync_nanos", &self.fsync_nanos);
        h(&mut m, "commit_wait_nanos", &self.commit_wait_nanos);
        h(&mut m, "commit_window_records", &self.commit_window_records);
        g(&mut m, "net_conns_live", &self.net_conns_live);
        c(&mut m, "net_conns_accepted", &self.net_conns_accepted);
        c(&mut m, "net_conns_reaped", &self.net_conns_reaped);
        c(&mut m, "net_frames_in", &self.net_frames_in);
        c(&mut m, "net_frames_out", &self.net_frames_out);
        c(&mut m, "net_bytes_in", &self.net_bytes_in);
        c(&mut m, "net_bytes_out", &self.net_bytes_out);
        c(&mut m, "net_backpressure", &self.net_backpressure);
        g(
            &mut m,
            "net_assembler_high_water",
            &self.net_assembler_high_water,
        );
        c(&mut m, "net_repl_pull_refused", &self.net_repl_pull_refused);
        c(&mut m, "repl_chunks_shipped", &self.repl_chunks_shipped);
        c(&mut m, "repl_bytes_shipped", &self.repl_bytes_shipped);
        c(&mut m, "repl_longpoll_parks", &self.repl_longpoll_parks);
        c(&mut m, "repl_resyncs", &self.repl_resyncs);
        c(&mut m, "repl_chunks_applied", &self.repl_chunks_applied);
        c(&mut m, "client_retries", &self.client_retries);
        c(&mut m, "client_backoff_nanos", &self.client_backoff_nanos);
        c(&mut m, "client_failovers", &self.client_failovers);
        c(&mut m, "client_reconnects", &self.client_reconnects);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(10), 1023);
        assert_eq!(bucket_upper(64), u64::MAX);
        // Every value falls at or below its bucket's upper bound.
        for v in [0u64, 1, 2, 3, 7, 8, 1000, 1 << 33, u64::MAX] {
            assert!(v <= bucket_upper(bucket_of(v)));
        }
    }

    #[test]
    fn histogram_counts_and_quantiles() {
        let h = Histogram::default();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 5050);
        assert_eq!(s.max, 100);
        // p50 of 1..=100 is in bucket [32,64) -> upper 63; the
        // log2 approximation must bracket the true median within 2x.
        let p50 = s.quantile(0.50);
        assert!((50..=100).contains(&p50), "p50 {p50}");
        assert_eq!(s.quantile(1.0), 100); // clamped to exact max
        assert_eq!(s.quantile(0.0), 1); // rank clamps to 1
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let s = Histogram::default().snapshot();
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.max, 0);
        assert!(s.buckets.is_empty());
    }

    #[test]
    fn gauge_saturates_and_tracks_high_water() {
        let g = Gauge::default();
        g.dec();
        assert_eq!(g.get(), 0, "dec saturates at zero");
        g.set_max(7);
        g.set_max(3);
        assert_eq!(g.get(), 7);
        g.inc();
        assert_eq!(g.get(), 8);
    }

    #[test]
    fn snapshot_roundtrips_on_the_wire() {
        let t = Telemetry::new();
        t.dedup_fresh.add(3);
        t.fsync_nanos.record(1500);
        t.fsync_nanos.record(0);
        t.net_conns_live.set(2);
        let snap = StatsSnapshot {
            version: STATS_VERSION,
            metrics: t.snapshot_metrics(),
        };
        let bytes = snap.to_wire();
        let back = StatsSnapshot::from_wire(&bytes).expect("roundtrip");
        assert_eq!(back, snap);
        assert_eq!(back.scalar("dedup_fresh"), Some(3));
        assert_eq!(back.scalar("net_conns_live"), Some(2));
        let h = back.histogram("fsync_nanos").expect("hist");
        assert_eq!(h.count, 2);
        assert_eq!(h.max, 1500);
    }

    #[test]
    fn unknown_stats_version_rejected() {
        let snap = StatsSnapshot {
            version: STATS_VERSION,
            metrics: Vec::new(),
        };
        let mut bytes = snap.to_wire();
        bytes[0] = 0xFF; // corrupt the version (little-endian u16)
        assert!(StatsSnapshot::from_wire(&bytes).is_err());
    }

    #[test]
    fn disabled_registry_reports_off() {
        let t = Telemetry::new();
        assert!(t.on());
        t.set_enabled(false);
        assert!(!t.on());
        // The switch freezes nothing by itself — call sites check
        // `on()` — but the snapshot path must still work while off.
        assert!(!t.snapshot_metrics().is_empty());
    }

    #[test]
    fn request_kind_names_cover_all_slots() {
        for tag in 0..u8::try_from(REQUEST_KINDS).expect("small") {
            assert!(!request_kind_name(tag).is_empty());
        }
        assert_eq!(request_kind_name(13), "stats");
        assert_eq!(request_kind_name(99), "other");
    }

    #[test]
    fn display_exposition_lists_every_metric() {
        let t = Telemetry::new();
        t.client_retries.inc();
        let snap = StatsSnapshot {
            version: STATS_VERSION,
            metrics: t.snapshot_metrics(),
        };
        let text = format!("{snap}");
        assert!(text.contains("counter   client_retries 1"));
        assert!(text.contains("histogram fsync_nanos"));
        assert!(text.contains("gauge     net_conns_live"));
        assert!(text.starts_with("# stats v1"));
    }
}
