//! Encrypted-table snapshots: a versioned, integrity-checked export
//! format.
//!
//! A snapshot is what Alex stores offline before risky operations
//! (re-keying, migrating providers) and what he would subpoena back
//! from Eve after a dispute. It contains only ciphertext — exporting
//! and importing require no key — but carries a SHA-256 integrity
//! checksum so silent corruption is detected at import.
//!
//! Layout: `magic ‖ version ‖ table-name ‖ EncryptedTable ‖ sha256`.
//!
//! Fetching the table to snapshot no longer requires one monolithic
//! `FetchAll` frame: [`crate::client::Client::export_snapshot`]
//! streams the ciphertext down as bounded `FetchChunk` pages and packs
//! the reassembled table through [`export`], so the snapshot path
//! works for tables beyond the transport's frame cap.

use dbph_crypto::sha256::Sha256;

use crate::error::PhError;
use crate::swp_ph::EncryptedTable;
use crate::wire::{Reader, WireDecode, WireEncode};

/// File magic: `dbphsnap`.
const MAGIC: &[u8; 8] = b"dbphsnap";
/// Current format version.
const VERSION: u16 = 1;

/// Serializes `(name, table)` into a snapshot byte blob.
#[must_use]
pub fn export(name: &str, table: &EncryptedTable) -> Vec<u8> {
    let mut body = Vec::new();
    body.extend_from_slice(MAGIC);
    VERSION.encode(&mut body);
    name.to_string().encode(&mut body);
    table.encode(&mut body);
    let digest = Sha256::digest(&body);
    body.extend_from_slice(&digest);
    body
}

/// Parses and verifies a snapshot, returning the table name and
/// ciphertext.
///
/// # Errors
/// Returns [`PhError::Wire`] on bad magic, unsupported version,
/// truncation, or checksum mismatch.
pub fn import(bytes: &[u8]) -> Result<(String, EncryptedTable), PhError> {
    const DIGEST: usize = 32;
    if bytes.len() < MAGIC.len() + 2 + DIGEST {
        return Err(PhError::Wire("snapshot too short".into()));
    }
    let (body, checksum) = bytes.split_at(bytes.len() - DIGEST);
    if Sha256::digest(body) != *checksum {
        return Err(PhError::Wire("snapshot checksum mismatch".into()));
    }
    let mut r = Reader::new(body);
    let magic = r.take(MAGIC.len())?;
    if magic != MAGIC {
        return Err(PhError::Wire("bad snapshot magic".into()));
    }
    let version = u16::decode(&mut r)?;
    if version != VERSION {
        return Err(PhError::Wire(format!(
            "unsupported snapshot version {version}"
        )));
    }
    let name = String::decode(&mut r)?;
    let table = EncryptedTable::decode(&mut r)?;
    r.expect_end()?;
    Ok((name, table))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbph_swp::{CipherWord, SwpParams};

    fn sample() -> EncryptedTable {
        EncryptedTable {
            params: SwpParams::new(13, 4, 32).unwrap(),
            docs: vec![
                (0, vec![CipherWord(vec![1; 13]), CipherWord(vec![2; 13])]),
                (5, vec![CipherWord(vec![3; 13]), CipherWord(vec![4; 13])]),
            ],
            next_doc_id: 6,
        }
    }

    #[test]
    fn roundtrip() {
        let blob = export("Emp", &sample());
        let (name, table) = import(&blob).unwrap();
        assert_eq!(name, "Emp");
        assert_eq!(table, sample());
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let blob = export("Emp", &sample());
        for i in 0..blob.len() {
            let mut bad = blob.clone();
            bad[i] ^= 0x01;
            assert!(import(&bad).is_err(), "undetected flip at byte {i}");
        }
    }

    #[test]
    fn truncation_detected() {
        let blob = export("Emp", &sample());
        for cut in [0, 1, 10, blob.len() - 1] {
            assert!(import(&blob[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut blob = export("Emp", &sample());
        blob.push(0);
        assert!(import(&blob).is_err());
    }

    #[test]
    fn version_is_enforced() {
        // Re-craft a body with a bumped version and a *valid* checksum:
        // must still be rejected on version grounds.
        let blob = export("Emp", &sample());
        let mut body = blob[..blob.len() - 32].to_vec();
        body[8] = 0xFF; // low byte of little-endian version
        let digest = Sha256::digest(&body);
        body.extend_from_slice(&digest);
        let err = import(&body).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }
}
