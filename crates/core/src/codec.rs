//! Length-prefix framing for the socket transport.
//!
//! A TCP stream is a byte pipe with no message boundaries; this module
//! restores them with the simplest possible discipline: every frame is
//! a little-endian `u32` payload length followed by exactly that many
//! payload bytes. The payload is an already-serialized
//! [`crate::protocol`] message — framing wraps the existing wire
//! format, it never re-encodes it, which is what makes the
//! byte-equivalence proof in `tests/net_transport.rs` possible: the
//! bytes inside a frame are the bytes `Server::handle` consumes and
//! produces in-process, verbatim.
//!
//! Security posture: the frame header is public metadata the adversary
//! (who *is* the server) already has — it equals the length of the
//! message she receives either way, so framing adds zero leakage on
//! top of the protocol bytes. Defensively, readers enforce a maximum
//! frame size ([`MAX_FRAME`]) so a hostile or corrupt peer claiming a
//! multi-gigabyte frame cannot drive an allocation bomb, and every
//! read/write loops over short transfers — `TcpStream` is free to
//! return one byte at a time and the codec must not care (the props in
//! `tests/props.rs` feed it exactly such adversarial chunking).
//!
//! All functions are generic over [`Read`]/[`Write`] so the tests can
//! exercise them on in-memory cursors and deliberately misbehaving
//! streams; the transport in [`crate::net`] instantiates them with
//! `std::net::TcpStream`.

use std::io::{ErrorKind, Read, Write};

use crate::error::PhError;

/// Defensive ceiling on a single frame's payload (64 MiB). Large
/// enough for any table ciphertext the experiments ship (a
/// 100k-row employee table is ~40 MiB); small enough that a hostile
/// length prefix cannot request an absurd allocation.
pub const MAX_FRAME: usize = 64 << 20;

/// Bytes of the length prefix.
const PREFIX: usize = 4;

/// Writes one frame (`u32` LE length + payload), looping over short
/// writes until every byte is on the stream.
///
/// # Errors
/// [`PhError::Transport`] when the payload exceeds [`MAX_FRAME`] or
/// the underlying writer fails (including writing zero bytes, which a
/// closed socket reports as success-with-no-progress).
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), PhError> {
    write_frame_capped(w, payload, MAX_FRAME)
}

/// [`write_frame`] with an explicit size cap (tests shrink the cap to
/// keep oversize cases cheap; production code uses [`MAX_FRAME`]).
///
/// # Errors
/// As [`write_frame`].
pub fn write_frame_capped<W: Write>(w: &mut W, payload: &[u8], cap: usize) -> Result<(), PhError> {
    if payload.len() > cap {
        return Err(PhError::Transport(format!(
            "refusing to send {}-byte frame (cap {cap})",
            payload.len()
        )));
    }
    let len = u32::try_from(payload.len()).map_err(|_| {
        PhError::Transport(format!("frame of {} bytes overflows u32", payload.len()))
    })?;
    // `Write::write_all` already loops over short writes, retries
    // `Interrupted`, and reports zero-progress as `WriteZero`.
    w.write_all(&len.to_le_bytes())
        .and_then(|()| w.write_all(payload))
        .and_then(|()| w.flush())
        .map_err(|e| PhError::Transport(format!("write failed: {e}")))
}

/// Reads one frame. Returns `Ok(None)` on a **clean** end of stream
/// (EOF exactly on a frame boundary — how a peer hangs up politely)
/// and an error when the stream dies mid-frame: truncation is a
/// protocol violation, not a shutdown, and the two must stay
/// distinguishable or a dropped connection could silently pass for a
/// completed session.
///
/// # Errors
/// [`PhError::Transport`] on mid-frame EOF, I/O failure, or a length
/// prefix exceeding [`MAX_FRAME`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>, PhError> {
    read_frame_capped(r, MAX_FRAME)
}

/// [`read_frame`] with an explicit size cap.
///
/// # Errors
/// As [`read_frame`].
pub fn read_frame_capped<R: Read>(r: &mut R, cap: usize) -> Result<Option<Vec<u8>>, PhError> {
    let mut prefix = [0u8; PREFIX];
    match read_exact_or_eof(r, &mut prefix)? {
        Filled::Eof => return Ok(None),
        Filled::Partial(got) => {
            return Err(PhError::Transport(format!(
                "stream truncated inside frame header ({got}/{PREFIX} bytes)"
            )))
        }
        Filled::Complete => {}
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > cap {
        return Err(PhError::Transport(format!(
            "peer announced {len}-byte frame (cap {cap})"
        )));
    }
    let mut payload = vec![0u8; len];
    match read_exact_or_eof(r, &mut payload)? {
        Filled::Complete => Ok(Some(payload)),
        // EOF after a complete header is truncation either way: the
        // peer promised `len` payload bytes and delivered fewer.
        Filled::Eof | Filled::Partial(_) => Err(PhError::Transport(format!(
            "stream truncated inside {len}-byte frame payload"
        ))),
    }
}

/// Incremental frame reassembly for readiness-driven I/O.
///
/// The blocking reader ([`read_frame`]) owns the stream and can loop
/// until a frame completes; an event loop cannot — it receives
/// whatever bytes the socket had ready, possibly half a header,
/// possibly three frames and a tail. `FrameAssembler` is the same
/// framing discipline restated as a push-parser: feed bytes in with
/// [`Self::extend`], pull complete frames out with
/// [`Self::next_frame`], and ask [`Self::is_mid_frame`] whether an
/// EOF right now would be a clean hangup or a truncation — exactly
/// the boundary/mid-frame distinction the blocking path enforces.
///
/// The size cap is checked as soon as the four header bytes arrive,
/// before any payload buffering, so a hostile length prefix is
/// rejected without the allocation, matching [`read_frame_capped`].
#[derive(Debug)]
pub struct FrameAssembler {
    cap: usize,
    buf: Vec<u8>,
    /// Bytes of `buf` before `pos` belong to already-yielded frames.
    pos: usize,
}

impl FrameAssembler {
    /// An assembler enforcing the production cap ([`MAX_FRAME`]).
    #[must_use]
    pub fn new() -> Self {
        Self::with_cap(MAX_FRAME)
    }

    /// An assembler with an explicit cap (tests shrink it).
    #[must_use]
    pub fn with_cap(cap: usize) -> Self {
        Self {
            cap,
            buf: Vec::new(),
            pos: 0,
        }
    }

    /// Feeds freshly-read stream bytes into the assembler.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Reclaim consumed prefix before growing: either the buffer is
        // fully drained (free) or it has built up past a threshold
        // where the memmove pays for the memory it returns.
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos >= 64 << 10 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame, `Ok(None)` when more bytes are
    /// needed. Call in a loop after every [`Self::extend`] — one read
    /// may complete several pipelined frames.
    ///
    /// # Errors
    /// [`PhError::Transport`] when the buffered header announces a
    /// frame beyond the cap; the connection is unrecoverable then
    /// (the parser cannot resynchronize a framing violation).
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, PhError> {
        let avail = self.buf.len() - self.pos;
        if avail < PREFIX {
            return Ok(None);
        }
        let header: [u8; PREFIX] = self.buf[self.pos..self.pos + PREFIX].try_into().expect("4");
        let len = u32::from_le_bytes(header) as usize;
        if len > self.cap {
            return Err(PhError::Transport(format!(
                "peer announced {len}-byte frame (cap {})",
                self.cap
            )));
        }
        if avail < PREFIX + len {
            return Ok(None);
        }
        let start = self.pos + PREFIX;
        let frame = self.buf[start..start + len].to_vec();
        self.pos = start + len;
        Ok(Some(frame))
    }

    /// Whether buffered bytes are sitting inside an unfinished frame —
    /// i.e. an EOF now is a truncation, not a clean hangup.
    #[must_use]
    pub fn is_mid_frame(&self) -> bool {
        self.pos < self.buf.len()
    }

    /// Bytes currently buffered ahead of the consumed prefix — the
    /// reassembly backlog an operator watches through the
    /// `net_assembler_high_water` gauge.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }
}

impl Default for FrameAssembler {
    fn default() -> Self {
        Self::new()
    }
}

/// How far a best-effort exact read got before the stream ended.
enum Filled {
    /// The buffer was filled completely.
    Complete,
    /// EOF before the first byte.
    Eof,
    /// EOF after `0 < n < buf.len()` bytes.
    Partial(usize),
}

/// Fills `buf`, looping over arbitrarily short reads, and reports
/// *where* EOF struck instead of flattening it into one error — the
/// caller needs "EOF on a boundary" and "EOF mid-frame" to be
/// different outcomes.
fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<Filled, PhError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(match filled {
                    0 => Filled::Eof,
                    n => Filled::Partial(n),
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(PhError::Transport(format!("read failed: {e}"))),
        }
    }
    Ok(Filled::Complete)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_roundtrip_back_to_back() {
        let payloads: Vec<Vec<u8>> = vec![vec![], vec![7], vec![1, 2, 3], vec![0xAB; 1000]];
        let mut pipe = Vec::new();
        for p in &payloads {
            write_frame(&mut pipe, p).unwrap();
        }
        let mut r = Cursor::new(pipe);
        for p in &payloads {
            assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(p.as_slice()));
        }
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn empty_stream_is_clean_eof() {
        let mut r = Cursor::new(Vec::new());
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn truncated_header_is_an_error() {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, b"hello").unwrap();
        for cut in 1..PREFIX {
            let mut r = Cursor::new(bytes[..cut].to_vec());
            assert!(matches!(read_frame(&mut r), Err(PhError::Transport(_))));
        }
    }

    #[test]
    fn truncated_payload_is_an_error() {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, b"hello").unwrap();
        for cut in PREFIX..bytes.len() {
            let mut r = Cursor::new(bytes[..cut].to_vec());
            assert!(matches!(read_frame(&mut r), Err(PhError::Transport(_))));
        }
    }

    #[test]
    fn oversized_announcement_rejected_without_allocating() {
        // Header claims u32::MAX bytes; the reader must refuse before
        // touching the (absent) payload.
        let mut bytes = u32::MAX.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0; 16]);
        let mut r = Cursor::new(bytes);
        assert!(matches!(read_frame(&mut r), Err(PhError::Transport(_))));
    }

    #[test]
    fn oversized_send_rejected() {
        let mut sink = Vec::new();
        let err = write_frame_capped(&mut sink, &[0u8; 100], 99);
        assert!(matches!(err, Err(PhError::Transport(_))));
        assert!(sink.is_empty(), "nothing may hit the wire");
    }

    #[test]
    fn cap_is_inclusive() {
        let mut pipe = Vec::new();
        write_frame_capped(&mut pipe, &[9u8; 8], 8).unwrap();
        let mut r = Cursor::new(pipe);
        assert_eq!(read_frame_capped(&mut r, 8).unwrap(), Some(vec![9u8; 8]));
    }

    #[test]
    fn assembler_matches_blocking_reader_under_any_chunking() {
        let payloads: Vec<Vec<u8>> = vec![vec![], vec![7], vec![1, 2, 3], vec![0xAB; 1000]];
        let mut stream = Vec::new();
        for p in &payloads {
            write_frame(&mut stream, p).unwrap();
        }
        // Worst-case chunking: one byte at a time; and some mid sizes.
        for chunk in [1usize, 2, 3, 5, 7, 1024, stream.len()] {
            let mut asm = FrameAssembler::new();
            let mut frames = Vec::new();
            for piece in stream.chunks(chunk) {
                asm.extend(piece);
                while let Some(f) = asm.next_frame().unwrap() {
                    frames.push(f);
                }
            }
            assert_eq!(frames, payloads, "chunk size {chunk}");
            assert!(!asm.is_mid_frame(), "stream ends on a boundary");
        }
    }

    #[test]
    fn assembler_distinguishes_boundary_from_mid_frame() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"hello").unwrap();
        let mut asm = FrameAssembler::new();
        // Every strict prefix that is not a boundary is mid-frame.
        for cut in 1..stream.len() {
            let mut asm = FrameAssembler::new();
            asm.extend(&stream[..cut]);
            assert!(asm.next_frame().unwrap().is_none());
            assert!(asm.is_mid_frame(), "cut at {cut}");
        }
        asm.extend(&stream);
        assert_eq!(asm.next_frame().unwrap().as_deref(), Some(&b"hello"[..]));
        assert!(!asm.is_mid_frame());
    }

    #[test]
    fn assembler_rejects_oversized_header_before_payload_arrives() {
        let mut asm = FrameAssembler::with_cap(16);
        asm.extend(&100u32.to_le_bytes());
        assert!(matches!(asm.next_frame(), Err(PhError::Transport(_))));
    }

    #[test]
    fn assembler_yields_pipelined_frames_from_one_extend() {
        let mut stream = Vec::new();
        for p in [b"a".as_slice(), b"bb", b"ccc"] {
            write_frame(&mut stream, p).unwrap();
        }
        let mut asm = FrameAssembler::new();
        asm.extend(&stream);
        assert_eq!(asm.next_frame().unwrap().as_deref(), Some(b"a".as_slice()));
        assert_eq!(asm.next_frame().unwrap().as_deref(), Some(b"bb".as_slice()));
        assert_eq!(
            asm.next_frame().unwrap().as_deref(),
            Some(b"ccc".as_slice())
        );
        assert!(asm.next_frame().unwrap().is_none());
    }
}
