//! Variable-length attribute words — the full-version optimization.
//!
//! The poster defers "a few straight-forward optimizations such as
//! attributes of variable length" to the never-published full version.
//! This module implements the natural completion: instead of padding
//! every attribute to the width of the *widest* one, each attribute
//! gets its own word width (its declared width plus framing) and its
//! own searchable-encryption instance under an independent subkey.
//!
//! Ciphertexts shrink accordingly (bench F5 quantifies it). Leakage is
//! unchanged: in the fixed-width scheme the position of a word inside a
//! document already reveals its attribute, so per-attribute widths
//! reveal nothing new.
//!
//! Each attribute's scheme is keyed by `master.derive("…/attr/i")`,
//! giving independent PRG streams — reusing one stream across columns
//! of different word widths would overlap keystream (a two-time pad).

use serde::{Deserialize, Serialize};

use dbph_crypto::SecretKey;
use dbph_relation::{Query, Relation, Schema, Tuple, Value};
use dbph_swp::{matches, CipherWord, FinalScheme, Location, SearchableScheme, SwpParams, Word};

use crate::error::PhError;
use crate::ph::{DatabasePh, IncrementalPh};

/// Framing per word: 2-byte length prefix + 1-byte attribute index
/// (kept for symmetry with the fixed-width codec and for corruption
/// detection during decryption).
const FRAMING: usize = 3;

/// Table ciphertext of the variable-length construction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VarlenTable {
    /// Per-attribute SWP parameters (public).
    pub attr_params: Vec<SwpParams>,
    /// One entry per tuple: `(doc id, one cipher word per attribute)`.
    pub docs: Vec<(u64, Vec<CipherWord>)>,
    /// Next fresh document id.
    pub next_doc_id: u64,
}

impl VarlenTable {
    /// Number of encrypted tuples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the ciphertext holds no tuples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Total ciphertext size in bytes — compared against the
    /// fixed-width construction by bench F5.
    #[must_use]
    pub fn ciphertext_bytes(&self) -> usize {
        self.docs
            .iter()
            .map(|(_, words)| words.iter().map(|w| w.0.len()).sum::<usize>())
            .sum()
    }
}

/// Encrypted query: per-term `(attribute index, trapdoor)` pairs. The
/// attribute index tells the server which column's parameters to use —
/// information the word position exposes anyway.
#[derive(Clone)]
pub struct VarlenQuery {
    /// Conjunction terms.
    pub terms: Vec<(usize, <FinalScheme as SearchableScheme>::Trapdoor)>,
}

/// The variable-length database PH.
#[derive(Clone)]
pub struct VarlenPh {
    schema: Schema,
    schemes: Vec<FinalScheme>,
    params: Vec<SwpParams>,
}

impl VarlenPh {
    /// Builds the construction for `schema` under `master`.
    ///
    /// # Errors
    /// Fails only if a per-attribute parameter set is degenerate
    /// (cannot happen for validated schemas; kept for safety).
    pub fn new(schema: Schema, master: &SecretKey) -> Result<Self, PhError> {
        let mut schemes = Vec::with_capacity(schema.arity());
        let mut params = Vec::with_capacity(schema.arity());
        for (i, attr) in schema.attributes().iter().enumerate() {
            let word_len = attr.ty.encoded_width() + FRAMING;
            // Shrink the check block for narrow attributes; keep the
            // false-positive rate ≤ 2^-24 everywhere.
            let check_len = 4.min(word_len - 1);
            let check_bits = (8 * check_len) as u32;
            let p = SwpParams::new(word_len, check_len, check_bits)?;
            let label = format!("dbph/varlen/attr/{i}/v1");
            schemes.push(FinalScheme::new(p, &master.derive(label.as_bytes())));
            params.push(p);
        }
        Ok(VarlenPh {
            schema,
            schemes,
            params,
        })
    }

    /// Per-attribute parameters (public).
    #[must_use]
    pub fn attr_params(&self) -> &[SwpParams] {
        &self.params
    }

    fn encode(&self, attr_index: usize, value: &Value) -> Result<Word, PhError> {
        let attr = &self.schema.attributes()[attr_index];
        value.check_type(&attr.ty, &attr.name)?;
        let bytes = value.encode();
        let word_len = self.params[attr_index].word_len;
        let mut out = Vec::with_capacity(word_len);
        out.extend_from_slice(&(bytes.len() as u16).to_be_bytes());
        out.extend_from_slice(&bytes);
        out.resize(word_len - 1, crate::encoding::PAD);
        out.push(attr_index as u8);
        Ok(Word::from_bytes_unchecked(out))
    }

    fn decode(&self, attr_index: usize, word: &Word) -> Result<Value, PhError> {
        let bytes = word.as_bytes();
        let word_len = self.params[attr_index].word_len;
        if bytes.len() != word_len {
            return Err(PhError::CorruptCiphertext(format!(
                "attribute {attr_index}: word length {} != {word_len}",
                bytes.len()
            )));
        }
        if bytes[word_len - 1] as usize != attr_index {
            return Err(PhError::CorruptCiphertext(format!(
                "attribute {attr_index}: word carries index {}",
                bytes[word_len - 1]
            )));
        }
        let value_len = u16::from_be_bytes([bytes[0], bytes[1]]) as usize;
        if value_len > word_len - FRAMING {
            return Err(PhError::CorruptCiphertext(
                "value length exceeds capacity".into(),
            ));
        }
        Value::decode(
            &self.schema.attributes()[attr_index].ty,
            &bytes[2..2 + value_len],
        )
        .map_err(|e| PhError::CorruptCiphertext(e.to_string()))
    }

    fn encrypt_tuple(&self, doc_id: u64, tuple: &Tuple) -> Result<Vec<CipherWord>, PhError> {
        tuple
            .values()
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let w = self.encode(i, v)?;
                self.schemes[i]
                    .encrypt_word(Location::new(doc_id, i as u32), &w)
                    .map_err(PhError::from)
            })
            .collect()
    }
}

impl DatabasePh for VarlenPh {
    type TableCt = VarlenTable;
    type QueryCt = VarlenQuery;

    fn scheme_name(&self) -> &'static str {
        "swp-varlen"
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn encrypt_table(&self, relation: &Relation) -> Result<VarlenTable, PhError> {
        if relation.schema() != &self.schema {
            return Err(PhError::SchemaMismatch {
                expected: self.schema.to_string(),
                actual: relation.schema().to_string(),
            });
        }
        let mut docs = Vec::with_capacity(relation.len());
        for (i, tuple) in relation.tuples().iter().enumerate() {
            docs.push((i as u64, self.encrypt_tuple(i as u64, tuple)?));
        }
        Ok(VarlenTable {
            attr_params: self.params.clone(),
            docs,
            next_doc_id: relation.len() as u64,
        })
    }

    fn decrypt_table(&self, ciphertext: &VarlenTable) -> Result<Relation, PhError> {
        let mut out = Relation::empty(self.schema.clone());
        for (doc_id, words) in &ciphertext.docs {
            if words.len() != self.schema.arity() {
                return Err(PhError::CorruptCiphertext("document arity mismatch".into()));
            }
            let mut values = Vec::with_capacity(words.len());
            for (i, cw) in words.iter().enumerate() {
                let w = self.schemes[i].decrypt_word(Location::new(*doc_id, i as u32), cw)?;
                values.push(self.decode(i, &w)?);
            }
            out.insert(Tuple::new(values))?;
        }
        Ok(out)
    }

    fn encrypt_query(&self, query: &Query) -> Result<VarlenQuery, PhError> {
        let indices = query.bind(&self.schema)?;
        let mut terms = Vec::with_capacity(indices.len());
        for (term, attr_index) in query.terms().iter().zip(indices) {
            let w = self.encode(attr_index, &term.value)?;
            terms.push((attr_index, self.schemes[attr_index].trapdoor(&w)?));
        }
        Ok(VarlenQuery { terms })
    }

    fn apply(table: &VarlenTable, query: &VarlenQuery) -> VarlenTable {
        let docs = table
            .docs
            .iter()
            .filter(|(_, words)| {
                query.terms.iter().all(|(attr_index, trapdoor)| {
                    words
                        .get(*attr_index)
                        .is_some_and(|cw| matches(&table.attr_params[*attr_index], trapdoor, cw))
                })
            })
            .cloned()
            .collect();
        VarlenTable {
            attr_params: table.attr_params.clone(),
            docs,
            next_doc_id: table.next_doc_id,
        }
    }

    fn ciphertext_len(table: &VarlenTable) -> usize {
        table.len()
    }

    fn doc_ids(table: &VarlenTable) -> Vec<u64> {
        table.docs.iter().map(|(id, _)| *id).collect()
    }
}

impl IncrementalPh for VarlenPh {
    fn append_tuple(&self, table: &mut VarlenTable, tuple: &Tuple) -> Result<(), PhError> {
        tuple.validate(&self.schema)?;
        let doc_id = table.next_doc_id;
        let enc = self.encrypt_tuple(doc_id, tuple)?;
        table.docs.push((doc_id, enc));
        table.next_doc_id += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ph::check_homomorphism_law;
    use crate::swp_ph::FinalSwpPh;
    use dbph_relation::schema::{emp_schema, hospital_schema};
    use dbph_relation::{tuple, ExactSelect};

    fn master() -> SecretKey {
        SecretKey::from_bytes([77u8; 32])
    }

    fn emp() -> Relation {
        Relation::from_tuples(
            emp_schema(),
            vec![
                tuple!["Montgomery", "HR", 7500i64],
                tuple!["Smith", "IT", 4900i64],
                tuple!["Jones", "IT", 1200i64],
            ],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip() {
        let ph = VarlenPh::new(emp_schema(), &master()).unwrap();
        let ct = ph.encrypt_table(&emp()).unwrap();
        assert!(ph.decrypt_table(&ct).unwrap().same_multiset(&emp()));
    }

    #[test]
    fn homomorphism_law() {
        let ph = VarlenPh::new(emp_schema(), &master()).unwrap();
        for q in [
            Query::select("name", "Montgomery"),
            Query::select("dept", "IT"),
            Query::select("salary", 4900i64),
            Query::select("salary", 0i64),
            Query::conjunction(vec![
                ExactSelect::new("dept", "IT"),
                ExactSelect::new("salary", 4900i64),
            ])
            .unwrap(),
        ] {
            check_homomorphism_law(&ph, &emp(), &q).unwrap();
        }
    }

    #[test]
    fn narrow_attributes_work() {
        // hospital has a BOOL attribute (width 1 → word length 4).
        let ph = VarlenPh::new(hospital_schema(), &master()).unwrap();
        let r = Relation::from_tuples(
            hospital_schema(),
            vec![
                tuple![1i64, "John", 1i64, true],
                tuple![2i64, "Mary", 2i64, false],
            ],
        )
        .unwrap();
        check_homomorphism_law(&ph, &r, &Query::select("outcome", true)).unwrap();
        check_homomorphism_law(&ph, &r, &Query::select("hospital", 2i64)).unwrap();
    }

    #[test]
    fn ciphertext_is_smaller_than_fixed_width() {
        // The point of the optimization: Emp pads dept(5)/salary(8) up
        // to name's 10 in the fixed scheme.
        let fixed = FinalSwpPh::new(emp_schema(), &master()).unwrap();
        let varlen = VarlenPh::new(emp_schema(), &master()).unwrap();
        let r = emp();
        let fixed_bytes = fixed.encrypt_table(&r).unwrap().ciphertext_bytes();
        let varlen_bytes = varlen.encrypt_table(&r).unwrap().ciphertext_bytes();
        assert!(
            varlen_bytes < fixed_bytes,
            "varlen {varlen_bytes} should beat fixed {fixed_bytes}"
        );
    }

    #[test]
    fn per_attribute_params_have_sane_shapes() {
        let ph = VarlenPh::new(hospital_schema(), &master()).unwrap();
        for (attr, p) in ph.schema().attributes().iter().zip(ph.attr_params()) {
            assert_eq!(p.word_len, attr.ty.encoded_width() + 3);
            assert!(p.check_len < p.word_len);
        }
    }

    #[test]
    fn incremental_append() {
        use crate::ph::IncrementalPh as _;
        let ph = VarlenPh::new(emp_schema(), &master()).unwrap();
        let mut ct = ph.encrypt_table(&emp()).unwrap();
        ph.append_tuple(&mut ct, &tuple!["Kim", "HR", 7500i64])
            .unwrap();
        let q = Query::select("dept", "HR");
        let sub = VarlenPh::apply(&ct, &ph.encrypt_query(&q).unwrap());
        assert_eq!(ph.decrypt_result(&sub, &q).unwrap().len(), 2);
    }

    #[test]
    fn schema_mismatch_rejected() {
        let ph = VarlenPh::new(emp_schema(), &master()).unwrap();
        let other = Relation::empty(hospital_schema());
        assert!(ph.encrypt_table(&other).is_err());
    }
}
