//! The §2 hospital scenario: why `q > 0` cannot be secured.
//!
//! Generates the paper's three-hospital patient population, outsources
//! it under the §3 construction, lets Alex run his four routine
//! queries — and then plays Eve, who knows only the priors, labeling
//! the encrypted transcript and extracting hospital 1's fatality
//! ratio.
//!
//! Run with: `cargo run --example hospital_inference`

use dbph::core::FinalSwpPh;
use dbph::crypto::SecretKey;
use dbph::games::attacks::hospital::{run_inference, HospitalPriors};
use dbph::relation::schema::hospital_schema;
use dbph::workload::HospitalConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = HospitalConfig {
        patients: 3000,
        ..HospitalConfig::default()
    };
    let relation = config.generate(2024);
    println!(
        "Generated {} patients across {} hospitals (flows {:?}, fatal rate {}).\n",
        relation.len(),
        config.hospitals(),
        config.flows,
        config.fatal_rate
    );

    let ph = FinalSwpPh::new(hospital_schema(), &SecretKey::from_bytes([42u8; 32]))?;

    // Alex issues:
    //   SELECT * FROM Patients WHERE hospital = 1;
    //   SELECT * FROM Patients WHERE hospital = 2;
    //   SELECT * FROM Patients WHERE hospital = 3;
    //   SELECT * FROM Patients WHERE outcome = 'fatal';
    // Eve sees four encrypted queries and four result-id sets, in
    // scrambled order, plus her priors.
    let priors = HospitalPriors::default();
    let (truth, inferred) = run_inference(&ph, &relation, &priors)?;

    println!("Eve's inference vs ground truth (fatality ratio per hospital):");
    println!("  hospital | true    | Eve's estimate");
    for (h, (true_ratio, estimate)) in truth.iter().zip(&inferred.fatal_ratio).enumerate() {
        println!("  {:>8} | {true_ratio:.4}  | {estimate:.4}", h + 1);
    }

    println!();
    println!("The table was encrypted with the paper's own provably-q=0-secure");
    println!("construction — yet Eve recovered per-hospital statistics exactly,");
    println!("because result sizes and intersections leak once queries flow.");
    println!("This is the paper's argument for restricting security claims to q = 0.");
    Ok(())
}
