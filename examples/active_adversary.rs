//! Theorem 2.1, live: one oracle query defeats any database PH.
//!
//! The generic cardinality adversary plays the Definition 2.1 game
//! against the paper's own construction at q = 0 (blind) and q = 1
//! (perfect); then the §2 "John" attack localizes a known patient with
//! a handful of oracle-encrypted queries.
//!
//! Run with: `cargo run --example active_adversary`

use dbph::core::FinalSwpPh;
use dbph::crypto::{DeterministicRng, SecretKey};
use dbph::games::attacks::active::{locate_john, CardinalityAdversary};
use dbph::games::{run_db_game, AdversaryMode};
use dbph::relation::schema::hospital_schema;
use dbph::workload::HospitalConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let factory = |rng: &mut DeterministicRng| {
        FinalSwpPh::new(hospital_schema(), &SecretKey::generate(rng)).unwrap()
    };
    let adversary = CardinalityAdversary::default();
    let trials = 300;

    println!("Definition 2.1 game vs the paper's §3 construction:");
    let q0 = run_db_game(&factory, &adversary, AdversaryMode::Active, 0, trials, 12);
    println!("  q = 0: {q0}");
    let q1 = run_db_game(&factory, &adversary, AdversaryMode::Active, 1, trials, 12);
    println!("  q = 1: {q1}");
    println!();
    println!("One encrypted query flips the adversary from blind to perfect —");
    println!("Theorem 2.1, demonstrated against the scheme the paper proves");
    println!("secure for q = 0.\n");

    // The narrative version: where was John treated, and how did it end?
    let config = HospitalConfig {
        patients: 500,
        ..HospitalConfig::default()
    };
    let (relation, _) = config.generate_with_john(7, 2, true);
    let ph = FinalSwpPh::new(hospital_schema(), &SecretKey::from_bytes([1u8; 32]))?;
    let findings = locate_john(&ph, &relation, 3)?;
    println!("The \"John\" attack (σ_name:John ∩ σ_hospital:X ∩ σ_outcome:fatal):");
    println!(
        "  John was treated in hospital {:?}; fatal outcome: {}.",
        findings.hospital, findings.fatal
    );
    println!("  (Planted ground truth: hospital 2, fatal = true.)");
    Ok(())
}
