//! Operational lifecycle: snapshots, confirmed deletes, key rotation,
//! and leakage profiling.
//!
//! Everything a deployment needs around the core construction: export
//! an integrity-checked ciphertext snapshot before risky operations,
//! delete tuples without ever trusting the server's false positives,
//! rotate the master key, and audit what the server has been able to
//! observe so far.
//!
//! Run with: `cargo run --example operations`

use dbph::core::{snapshot, Client, DatabasePh, FinalSwpPh, Server};
use dbph::crypto::SecretKey;
use dbph::games::leakage;
use dbph::relation::{tuple, Query};
use dbph::workload::EmployeeGen;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let server = Server::new();
    let old_key = SecretKey::from_bytes([10u8; 32]);
    let ph = FinalSwpPh::new(EmployeeGen::schema(), &old_key)?;
    let mut client = Client::new(ph, server.clone());

    let relation = EmployeeGen {
        rows: 500,
        ..EmployeeGen::default()
    }
    .generate(77);
    client.outsource(&relation)?;
    println!("Outsourced {} tuples.", relation.len());

    // 1. Snapshot before doing anything risky. The snapshot is pure
    //    ciphertext — safe to store anywhere.
    let ph_for_snapshot = FinalSwpPh::new(EmployeeGen::schema(), &old_key)?;
    let ct = ph_for_snapshot.encrypt_table(&client.fetch_all()?)?;
    let blob = snapshot::export("Emp", &ct);
    println!("Snapshot: {} bytes, integrity-checked.", blob.len());
    let (restored_name, restored) = snapshot::import(&blob)?;
    assert_eq!(restored_name, "Emp");
    assert_eq!(restored.len(), 500);

    // 2. Confirmed delete: the server only ever removes ids the client
    //    verified in plaintext, so false positives are never deleted.
    client.insert(&tuple!["temp-worker", "dept-00", 1i64])?;
    let removed = client.delete(&Query::select("name", "temp-worker"))?;
    println!("Deleted {removed} tuple(s) via two-phase confirm.");

    // 3. Key rotation: re-encrypt everything under a fresh key.
    let new_key = SecretKey::from_bytes([20u8; 32]);
    client.rekey(FinalSwpPh::new(EmployeeGen::schema(), &new_key)?)?;
    println!("Rotated master key; table still answers queries:");
    let r = client.select(&Query::select("dept", "dept-01"))?;
    println!("  dept-01 has {} employees.", r.len());

    // 4. Leakage audit: what could Eve (or whoever buys her disks)
    //    reconstruct from this session?
    let profile = leakage::profile(&server.observer().events());
    println!("\nLeakage audit of Eve's transcript:");
    println!("  {}", profile.summary());
    if let Some((doc, count)) = profile.hottest_doc() {
        println!("  hottest document: id {doc} returned {count} time(s)");
    }
    println!("\nNote the deleted doc ids and result sizes — access patterns");
    println!("accumulate even when every byte stored is ciphertext.");
    Ok(())
}
