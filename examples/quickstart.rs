//! Quickstart: outsource a table, query it, stay encrypted.
//!
//! Replays the paper's §3 running example end to end: the `Emp`
//! relation is encrypted under Alex's key, shipped to Eve's server as
//! bytes, queried with an encrypted exact select, and the result is
//! decrypted and false-positive-filtered client-side.
//!
//! Run with: `cargo run --example quickstart`

use dbph::core::{Client, FinalSwpPh, Server};
use dbph::crypto::{OsEntropy, SecretKey};
use dbph::relation::schema::emp_schema;
use dbph::relation::{tuple, Projection, Query, Relation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Alex generates a fresh master key. Nothing derived from it ever
    // leaves his machine.
    let mut entropy = OsEntropy;
    let master = SecretKey::generate(&mut entropy);

    // The paper's running example: Emp(name, dept, salary).
    let emp = Relation::from_tuples(
        emp_schema(),
        vec![
            tuple!["Montgomery", "HR", 7500i64],
            tuple!["Smith", "IT", 4900i64],
            tuple!["Jones", "IT", 1200i64],
            tuple!["Ng", "IT", 4900i64],
        ],
    )?;
    println!("Plaintext relation:\n{emp}\n");

    // Eve's server: stores ciphertext, executes keyless trapdoor scans,
    // records everything it sees.
    let server = Server::new();
    let ph = FinalSwpPh::new(emp_schema(), &master)?;
    let mut alex = Client::new(ph, server.clone());

    alex.outsource(&emp)?;
    println!("Outsourced {} tuples to Eve.\n", emp.len());

    // σ_name:"Montgomery" — the paper's worked query.
    let query = Query::select("name", "Montgomery");
    let result = alex.select(&query)?;
    println!("{query} returned:\n{result}\n");

    // Conjunctions and projections work too.
    let q2 = Query::conjunction(vec![
        dbph::relation::ExactSelect::new("dept", "IT"),
        dbph::relation::ExactSelect::new("salary", 4900i64),
    ])?;
    let rows = alex.select_projected(&q2, &Projection::Columns(vec!["name".into()]))?;
    println!("{q2} projected to name:");
    for row in rows {
        println!("  {row}");
    }

    // Inserts go through without re-encrypting the table.
    alex.insert(&tuple!["Kim", "HR", 7500i64])?;
    let all = alex.fetch_all()?;
    println!("\nAfter insert, table holds {} tuples.", all.len());

    // What did Eve learn? Ciphertext sizes and access patterns — no values.
    println!(
        "\nEve's transcript ({} events):",
        server.observer().events().len()
    );
    for (terms, matched) in server.observer().queries() {
        println!(
            "  observed {} trapdoor(s); matching doc ids: {matched:?}",
            terms.len()
        );
    }
    Ok(())
}
