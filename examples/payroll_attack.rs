//! The §1 payroll attack: breaking bucketization with two tables.
//!
//! Eve crafts the paper's tables 1 and 2 — same ids, salaries that are
//! distinct in one table and equal in the other — and distinguishes
//! their encryptions under Hacıgümüş-style bucketization with one look
//! at the salary tags. The same adversary gets nothing against the §3
//! construction.
//!
//! Run with: `cargo run --example payroll_attack`

use dbph::baselines::{BucketConfig, BucketizationPh};
use dbph::core::{DatabasePh, FinalSwpPh};
use dbph::crypto::{DeterministicRng, SecretKey};
use dbph::games::attacks::salary::{
    bucketization_adversary, salary_schema, swp_adversary, table_one, table_two,
};
use dbph::games::{run_db_game, AdversaryMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Eve's two chosen tables (paper §1):");
    println!("table 1:\n{}", table_one());
    println!("table 2:\n{}\n", table_two());

    // One concrete encryption, to see the leak with the naked eye.
    let key = SecretKey::from_bytes([7u8; 32]);
    let cfg = BucketConfig::uniform(&salary_schema(), 16, (0, 10_000))?;
    let buckets = BucketizationPh::new(salary_schema(), cfg, &key)?;
    let ct1 = buckets.encrypt_table(&table_one())?;
    let ct2 = buckets.encrypt_table(&table_two())?;
    println!(
        "Bucketization salary tags, table 1: {:?} vs {:?}",
        ct1.docs[0].1.tags[1], ct1.docs[1].1.tags[1]
    );
    println!(
        "Bucketization salary tags, table 2: {:?} vs {:?}",
        ct2.docs[0].1.tags[1], ct2.docs[1].1.tags[1]
    );
    println!("Equal tags in exactly one of them — that *is* the distinguisher.\n");

    // Now measured, in the Definition 2.1 game (q = 0, passive).
    let trials = 300;
    let est = run_db_game(
        &|rng: &mut DeterministicRng| {
            let cfg = BucketConfig::uniform(&salary_schema(), 16, (0, 10_000)).unwrap();
            BucketizationPh::new(salary_schema(), cfg, &SecretKey::generate(rng)).unwrap()
        },
        &bucketization_adversary(),
        AdversaryMode::Passive,
        0,
        trials,
        99,
    );
    println!("Measured vs bucketization: {est}");

    let est = run_db_game(
        &|rng: &mut DeterministicRng| {
            FinalSwpPh::new(salary_schema(), &SecretKey::generate(rng)).unwrap()
        },
        &swp_adversary(),
        AdversaryMode::Passive,
        0,
        trials,
        99,
    );
    println!("Measured vs swp-final:     {est}");
    println!();
    println!("Bucketization falls with advantage ≈ 1; the paper's construction");
    println!("leaves the same adversary at a coin flip.");
    Ok(())
}
