//! A small SQL session over an outsourced, encrypted table.
//!
//! Shows the library as a downstream user would consume it: SQL
//! statements are parsed locally, DDL and inserts are executed against
//! the encrypted server, and `SELECT … WHERE a = v [AND …]` runs as
//! encrypted exact selects with client-side projection — while a
//! plaintext reference engine checks every result.
//!
//! Run with: `cargo run --example encrypted_sql`

use dbph::core::{Client, FinalSwpPh, Server};
use dbph::crypto::SecretKey;
use dbph::relation::sql::{self, ExecOutcome, Statement};
use dbph::relation::{Catalog, Tuple};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let script = [
        "CREATE TABLE Emp (name STRING(16), dept STRING(8), salary INT)",
        "INSERT INTO Emp VALUES ('Montgomery', 'HR', 7500), ('Smith', 'IT', 4900)",
        "INSERT INTO Emp VALUES ('Jones', 'IT', 1200), ('Ng', 'IT', 4900)",
        "SELECT * FROM Emp WHERE name = 'Montgomery'",
        "SELECT name, salary FROM Emp WHERE dept = 'IT' AND salary = 4900",
        "SELECT name FROM Emp WHERE dept = 'HR' OR salary = 1200",
        "DELETE FROM Emp WHERE name = 'Jones'",
        "SELECT * FROM Emp",
    ];

    // Plaintext reference engine (runs locally) …
    let mut reference = Catalog::new();
    // … and the encrypted deployment (client + untrusted server).
    let server = Server::new();
    let master = SecretKey::from_bytes([33u8; 32]);
    let mut client: Option<Client> = None;

    for statement_text in script {
        println!("sql> {statement_text}");
        let reference_outcome = sql::execute(&mut reference, statement_text)?;

        match sql::parse_statement(statement_text)? {
            Statement::CreateTable(schema) => {
                let ph = FinalSwpPh::new(schema.clone(), &master)?;
                let mut c = Client::new(ph, server.clone());
                // Outsource the empty table so inserts have a target.
                c.outsource(&dbph::relation::Relation::empty(schema))?;
                client = Some(c);
                println!("  created (outsourced under client key)");
            }
            Statement::Insert { rows, .. } => {
                let c = client.as_mut().expect("CREATE TABLE first");
                // Multi-row INSERTs ship as one AppendBatch message —
                // one round-trip, identical per-tuple server events.
                let tuples: Vec<Tuple> = rows.into_iter().map(Tuple::new).collect();
                c.insert_many(&tuples)?;
                println!("  inserted {} row(s) in one batch", tuples.len());
            }
            Statement::Select(stmt) => {
                let c = client.as_ref().expect("CREATE TABLE first");
                let rows = match &stmt.filter {
                    Some(dnf) => {
                        let relation = c.select_dnf(dnf)?;
                        dbph::relation::exec::project(&relation, &stmt.projection)?
                    }
                    None => {
                        let all = c.fetch_all()?;
                        dbph::relation::exec::project(&all, &stmt.projection)?
                    }
                };
                for row in &rows {
                    println!("  {row}");
                }
                // Cross-check against the plaintext engine.
                if let ExecOutcome::Rows { rows: expected, .. } = reference_outcome {
                    let mut a = rows.clone();
                    let mut b = expected.clone();
                    a.sort();
                    b.sort();
                    assert_eq!(a, b, "encrypted result diverged from plaintext reference");
                    println!("  ✓ matches plaintext reference ({} row(s))", rows.len());
                }
            }
            Statement::Delete { filter, .. } => {
                let c = client.as_ref().expect("CREATE TABLE first");
                let removed = c.delete(&filter)?;
                println!("  deleted {removed} row(s)");
            }
            Statement::DropTable(_) => {
                client.take();
                println!("  dropped");
            }
        }
        println!();
    }
    Ok(())
}
