//! A small SQL session over an outsourced, encrypted table.
//!
//! Shows the library as a downstream user would consume it: SQL
//! statements are parsed locally, DDL and inserts are executed against
//! the encrypted server, and `SELECT … WHERE a = v [AND …]` runs as
//! encrypted exact selects with client-side projection — while a
//! plaintext reference engine checks every result.
//!
//! The session runs over any [`Transport`], so the same script drives
//! four deployments:
//!
//! * `cargo run --example encrypted_sql` — in-process server (the
//!   seed's configuration; no sockets).
//! * `cargo run --example encrypted_sql -- --net` — self-contained
//!   loopback demo: a framed TCP server on an ephemeral port, the
//!   session running through a pooled connection, identical output.
//! * `cargo run --example encrypted_sql -- --listen 127.0.0.1:4460` —
//!   serve a fresh encrypted-table server for remote clients.
//! * `cargo run --example encrypted_sql -- --connect 127.0.0.1:4460`
//!   — run the session against such a server across the network.
//!
//! # Quickstart: durable tables that survive `kill -9`
//!
//! Add `--data-dir <path>` to any server-side mode and the server
//! persists every mutation to an append-only segment log (fsync'd
//! before each acknowledgement) and recovers the store on start —
//! including after an *unclean* kill, where a torn tail record is
//! truncated rather than panicking. A kill-and-restart session:
//!
//! ```text
//! # terminal 1 — serve with persistence
//! $ cargo run --example encrypted_sql -- --listen 127.0.0.1:4460 --data-dir /tmp/dbph-data
//! -- durable store at /tmp/dbph-data (0 table(s) recovered)
//! -- serving encrypted tables on 127.0.0.1:4460
//!
//! # terminal 2 — create tables, insert rows (stop before DROP by
//! # running your own client, or just let the script run: its final
//! # DROP is itself a logged, recoverable mutation)
//! $ cargo run --example encrypted_sql -- --connect 127.0.0.1:4460
//!
//! # terminal 1 — simulate a crash, then restart on the same dir
//! ^C (or kill -9 the process)
//! $ cargo run --example encrypted_sql -- --listen 127.0.0.1:4460 --data-dir /tmp/dbph-data
//! -- durable store at /tmp/dbph-data (1 table(s) recovered)
//! ```
//!
//! The recovered server answers every query — and records every
//! `Observer` event — byte-identically to a server that never died:
//! durability is Eve persisting bytes she already holds, invisible in
//! the transcript model (`tests/durability.rs` pins this).

use dbph::core::{Client, FinalSwpPh, NetServer, PooledClient, Server, Transport};
use dbph::crypto::SecretKey;
use dbph::relation::sql::{self, ExecOutcome, Statement};
use dbph::relation::{Catalog, Tuple};

/// Builds the server for a server-side mode: durable when the user
/// passed `--data-dir`, in-memory otherwise.
fn make_server(
    shards: usize,
    data_dir: Option<&str>,
) -> Result<Server, Box<dyn std::error::Error>> {
    match data_dir {
        None => Ok(Server::with_shards(shards)),
        Some(dir) => {
            let server = Server::open_durable(dir, shards)?;
            println!(
                "-- durable store at {dir} ({} table(s) recovered)",
                server.table_names().len()
            );
            Ok(server)
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--data-dir <path>` composes with any mode; extract it first.
    let data_dir = args
        .iter()
        .position(|a| a == "--data-dir")
        .map(|i| {
            args.remove(i); // the flag
            if i < args.len() {
                Ok(args.remove(i)) // its value
            } else {
                Err("usage: --data-dir <path>")
            }
        })
        .transpose()?;
    let data_dir = data_dir.as_deref();

    match args.first().map(String::as_str) {
        None => {
            // In-process: the transport is the server itself.
            run_script(make_server(1, data_dir)?)
        }
        Some("--net") => {
            // Loopback: same script, real frames on a real socket.
            let server = make_server(4, data_dir)?;
            let handle = NetServer::spawn(server, "127.0.0.1:0")?;
            println!("-- loopback server listening on {}", handle.addr());
            let pool = PooledClient::connect(handle.addr(), 2)?;
            let result = run_script(pool);
            handle.shutdown();
            result
        }
        Some("--listen") => {
            let addr = args.get(1).map_or("127.0.0.1:4460", String::as_str);
            let listener = std::net::TcpListener::bind(addr)?;
            println!("-- serving encrypted tables on {}", listener.local_addr()?);
            println!("-- connect with: cargo run --example encrypted_sql -- --connect {addr}");
            NetServer::serve(listener, make_server(4, data_dir)?)?;
            Ok(())
        }
        Some("--connect") => {
            if data_dir.is_some() {
                return Err("--data-dir is a server-side flag; use it with --listen/--net".into());
            }
            let addr = args
                .get(1)
                .ok_or("usage: encrypted_sql --connect <addr>")?
                .clone();
            println!("-- connecting to {addr} (2-connection pool)");
            run_script(PooledClient::connect(addr.as_str(), 2)?)
        }
        Some(other) => Err(format!(
            "unknown mode {other:?}; use --net, --listen [addr], or --connect <addr> \
             (add --data-dir <path> on the server side for persistence)"
        )
        .into()),
    }
}

/// Parses and executes the demo script against `transport` — an
/// in-process [`Server`] or a [`PooledClient`] across TCP — while a
/// local plaintext engine cross-checks every SELECT. The transport is
/// cloned into each table's crypto client; clones of a
/// [`PooledClient`] share one bounded connection pool.
fn run_script<T: Transport + Clone>(transport: T) -> Result<(), Box<dyn std::error::Error>> {
    let script = [
        "CREATE TABLE Emp (name STRING(16), dept STRING(8), salary INT)",
        "INSERT INTO Emp VALUES ('Montgomery', 'HR', 7500), ('Smith', 'IT', 4900)",
        "INSERT INTO Emp VALUES ('Jones', 'IT', 1200), ('Ng', 'IT', 4900)",
        "SELECT * FROM Emp WHERE name = 'Montgomery'",
        "SELECT name, salary FROM Emp WHERE dept = 'IT' AND salary = 4900",
        "SELECT name FROM Emp WHERE dept = 'HR' OR salary = 1200",
        "DELETE FROM Emp WHERE name = 'Jones'",
        "SELECT * FROM Emp",
        "DROP TABLE Emp",
    ];

    // Plaintext reference engine (runs locally) …
    let mut reference = Catalog::new();
    // … and the encrypted deployment (client + untrusted server).
    let master = SecretKey::from_bytes([33u8; 32]);
    let mut client: Option<Client<T>> = None;

    for statement_text in script {
        println!("sql> {statement_text}");
        let reference_outcome = sql::execute(&mut reference, statement_text)?;

        match sql::parse_statement(statement_text)? {
            Statement::CreateTable(schema) => {
                let ph = FinalSwpPh::new(schema.clone(), &master)?;
                let mut c = Client::new(ph, transport.clone());
                // A durable server may have recovered this table from
                // a previous (killed) run; the script's CREATE means
                // "start fresh", so drop any leftover best-effort.
                let _ = c.drop_table();
                // Outsource the empty table so inserts have a target.
                c.outsource(&dbph::relation::Relation::empty(schema))?;
                client = Some(c);
                println!("  created (outsourced under client key)");
            }
            Statement::Insert { rows, .. } => {
                let c = client.as_mut().expect("CREATE TABLE first");
                // Multi-row INSERTs ship as one AppendBatch message —
                // one round-trip, identical per-tuple server events.
                let tuples: Vec<Tuple> = rows.into_iter().map(Tuple::new).collect();
                c.insert_many(&tuples)?;
                println!("  inserted {} row(s) in one batch", tuples.len());
            }
            Statement::Select(stmt) => {
                let c = client.as_ref().expect("CREATE TABLE first");
                let rows = match &stmt.filter {
                    Some(dnf) => {
                        let relation = c.select_dnf(dnf)?;
                        dbph::relation::exec::project(&relation, &stmt.projection)?
                    }
                    None => {
                        // Whole-table reads stream as bounded chunks —
                        // the transfer that used to buffer the table
                        // in one frame.
                        let all = c.fetch_all_chunked(dbph::core::protocol::DEFAULT_CHUNK_BYTES)?;
                        dbph::relation::exec::project(&all, &stmt.projection)?
                    }
                };
                for row in &rows {
                    println!("  {row}");
                }
                // Cross-check against the plaintext engine.
                if let ExecOutcome::Rows { rows: expected, .. } = reference_outcome {
                    let mut a = rows.clone();
                    let mut b = expected.clone();
                    a.sort();
                    b.sort();
                    assert_eq!(a, b, "encrypted result diverged from plaintext reference");
                    println!("  ✓ matches plaintext reference ({} row(s))", rows.len());
                }
            }
            Statement::Delete { filter, .. } => {
                let c = client.as_ref().expect("CREATE TABLE first");
                let removed = c.delete(&filter)?;
                println!("  deleted {removed} row(s)");
            }
            Statement::DropTable(_) => {
                if let Some(c) = client.take() {
                    // Leave a shared server clean so --connect runs
                    // back-to-back against one --listen process.
                    c.drop_table()?;
                }
                println!("  dropped");
            }
        }
        println!();
    }
    Ok(())
}
