//! A small SQL session over an outsourced, encrypted table.
//!
//! Shows the library as a downstream user would consume it: SQL
//! statements are parsed locally, DDL and inserts are executed against
//! the encrypted server, and `SELECT … WHERE a = v [AND …]` runs as
//! encrypted exact selects with client-side projection — while a
//! plaintext reference engine checks every result.
//!
//! The session runs over any [`Transport`], so the same script drives
//! four deployments:
//!
//! * `cargo run --example encrypted_sql` — in-process server (the
//!   seed's configuration; no sockets).
//! * `cargo run --example encrypted_sql -- --net` — self-contained
//!   loopback demo: a framed TCP server on an ephemeral port, the
//!   session running through a pooled connection, identical output.
//! * `cargo run --example encrypted_sql -- --listen 127.0.0.1:4460` —
//!   serve a fresh encrypted-table server for remote clients.
//! * `cargo run --example encrypted_sql -- --connect 127.0.0.1:4460`
//!   — run the session against such a server across the network.
//!
//! # Quickstart: durable tables that survive `kill -9`
//!
//! Add `--data-dir <path>` to any server-side mode and the server
//! persists every mutation to an append-only segment log (fsync'd
//! before each acknowledgement) and recovers the store on start —
//! including after an *unclean* kill, where a torn tail record is
//! truncated rather than panicking. A kill-and-restart session:
//!
//! ```text
//! # terminal 1 — serve with persistence
//! $ cargo run --example encrypted_sql -- --listen 127.0.0.1:4460 --data-dir /tmp/dbph-data
//! -- durable store at /tmp/dbph-data (0 table(s) recovered)
//! -- serving encrypted tables on 127.0.0.1:4460
//!
//! # terminal 2 — create tables, insert rows (stop before DROP by
//! # running your own client, or just let the script run: its final
//! # DROP is itself a logged, recoverable mutation)
//! $ cargo run --example encrypted_sql -- --connect 127.0.0.1:4460
//!
//! # terminal 1 — simulate a crash, then restart on the same dir
//! ^C (or kill -9 the process)
//! $ cargo run --example encrypted_sql -- --listen 127.0.0.1:4460 --data-dir /tmp/dbph-data
//! -- durable store at /tmp/dbph-data (1 table(s) recovered)
//! ```
//!
//! The recovered server answers every query — and records every
//! `Observer` event — byte-identically to a server that never died:
//! durability is Eve persisting bytes she already holds, invisible in
//! the transcript model (`tests/durability.rs` pins this).
//!
//! # Quickstart: many clients against one process
//!
//! Two more server-side flags tune the deployment for session count
//! and write concurrency — neither changes a single response byte:
//!
//! * `--event-loop` — serve all connections from one poll-based
//!   readiness loop instead of one OS thread per connection, so a
//!   thousand-plus idle-ish sessions cost file descriptors, not
//!   stacks (`tests/session_scale.rs` drives 1100 at once).
//! * `--flush-window <ms>` — with `--data-dir`, group-commit
//!   durability: concurrent mutations that land within the window
//!   share one fsync barrier and are only acked after it completes.
//!   `0` (the default) still group-commits — writers that collide
//!   mid-fsync ride the next barrier together — a positive window
//!   trades ack latency for bigger batches.
//!
//! ```text
//! # terminal 1 — one process, ready for thousands of sessions
//! $ cargo run --release --example encrypted_sql -- \
//!       --listen 127.0.0.1:4460 --event-loop \
//!       --data-dir /tmp/dbph-data --flush-window 2
//! -- durable store at /tmp/dbph-data (0 table(s) recovered)
//! -- group-commit flush window: 2 ms
//! -- serving encrypted tables on 127.0.0.1:4460 (event-loop front-end)
//!
//! # terminals 2..N — as many concurrent sessions as you like
//! $ cargo run --release --example encrypted_sql -- --connect 127.0.0.1:4460
//! ```
//!
//! # Quickstart: kill the server mid-batch, lose nothing, apply once
//!
//! Two client-side flags exercise the exactly-once machinery:
//!
//! * `--retry <n>` — retry failed exchanges up to `n` attempts with
//!   exponential backoff. Retried mutations carry an idempotent
//!   request envelope, so a re-send the server already applied is
//!   *replayed* from its dedup window, never applied twice.
//! * `--chaos-seed <s>` — interpose a seeded fault-injecting proxy
//!   (connection resets, torn frames, swallowed acks, delays) between
//!   this client and the server. The same seed reproduces the same
//!   weather; pair it with `--retry` or the session will simply fail.
//!
//! ```text
//! # terminal 1 — durable server
//! $ cargo run --example encrypted_sql -- --listen 127.0.0.1:4460 --data-dir /tmp/dbph-data
//!
//! # terminal 2 — client that shrugs off faults
//! $ cargo run --example encrypted_sql -- --connect 127.0.0.1:4460 --retry 8 --chaos-seed 42
//!
//! # while terminal 2 runs: kill -9 terminal 1's process mid-batch,
//! # then restart it on the same --data-dir. The client's in-flight
//! # mutation retries against the recovered server, whose dedup
//! # window (rebuilt from the log) replays any already-applied
//! # envelope — the session completes, every row exactly once, and
//! # the final SELECTs still match the plaintext reference.
//! ```
//!
//! # Quickstart: kill the primary, promote the follower
//!
//! `--replicate-from <addr>` turns this process into a read-only
//! follower: it bootstraps a byte-identical copy of the primary's
//! segment log into its own `--data-dir`, recovers a server from it
//! (bootstrap *is* recovery), and then tails the primary — every
//! pulled chunk is fsync'd into the follower's log before it is
//! applied. Add `--promote` and the follower promotes itself to a
//! serving primary as soon as the primary stops answering:
//!
//! ```text
//! # terminal 1 — the primary
//! $ cargo run --example encrypted_sql -- --listen 127.0.0.1:4460 --data-dir /tmp/dbph-a
//!
//! # terminal 2 — a follower that will take over
//! $ cargo run --example encrypted_sql -- \
//!       --replicate-from 127.0.0.1:4460 127.0.0.1:4461 \
//!       --data-dir /tmp/dbph-b --promote
//! -- follower of 127.0.0.1:4460: 0 table(s) at stream offset 9
//! -- serving read-only follower on 127.0.0.1:4461
//!
//! # terminal 3 — run a session against the primary
//! $ cargo run --example encrypted_sql -- --connect 127.0.0.1:4460 --retry 8
//!
//! # kill -9 terminal 1 mid-session. Terminal 2 notices, promotes,
//! # and serves as primary on 127.0.0.1:4461; the follower's log
//! # carried every idempotent request envelope verbatim, so a client
//! # redirected at the promoted server replays — never re-applies —
//! # any mutation the dead primary already acked (the chaos proptest
//! # in tests/replication.rs pins exactly this).
//! ```
//!
//! Semi-sync durability (hold each ack until a follower has fsync'd
//! the record) is a server-side option — see
//! `ReplicationOptions { min_acks }` and `BENCH_repl.json` for its
//! cost; this demo tails asynchronously.
//!
//! # Quickstart: the operator stats plane
//!
//! Every server keeps a transcript-invisible metrics registry —
//! counters, gauges, and log2 latency histograms — and answers a
//! `Stats` protocol message with a versioned snapshot. Two client-side
//! flags expose it:
//!
//! * `--connect <addr> --stats` — fetch one snapshot, print it as
//!   text, exit.
//! * `--connect <addr> --stats-every <secs>` — print a snapshot every
//!   `<secs>` seconds until interrupted.
//!
//! ```text
//! $ cargo run --example encrypted_sql -- --connect 127.0.0.1:4460 --stats
//! # stats v1
//! counter   dedup_fresh 12
//! histogram req_query_nanos count=6 mean=81321 p50=65535 p95=131071 p99=131071 max=97412
//! …
//! ```
//!
//! Collection never touches the request/response bytes: responses,
//! response ordering, `Observer` transcripts, and durable segment
//! bytes are byte-identical with telemetry on or off
//! (`tests/telemetry.rs` pins this). The metrics measure *Eve's
//! machine* — latencies, queue depths, fsync costs — never Alex's
//! plaintext, so the stats plane adds nothing to the adversary's view
//! that she could not already compute from her own hardware.
//!
//! Metrics reference (the snapshot is self-describing; this is the
//! map from name to meaning):
//!
//! | name | kind | meaning |
//! |------|------|---------|
//! | `req_<kind>_nanos` | histogram | server handle latency per message kind (`create`, `query`, `append`, …) |
//! | `dedup_fresh` / `dedup_replays` / `dedup_stale` | counter | envelope dedup outcomes: applied / replayed from window / refused as too old |
//! | `plan_probe_queries` / `plan_scan_queries` | counter | queries answered via the inverted index vs full shard scan |
//! | `index_probe_hits` / `index_probe_misses` | counter | index probes that found a cached posting vs built one |
//! | `index_posting_len` / `index_delta_len` | histogram | posting sizes returned / delta-scan lengths beyond the cached prefix |
//! | `fsync_nanos` | histogram | latency of each durable-log fsync |
//! | `commit_wait_nanos` | histogram | time a mutation waited on its group-commit barrier |
//! | `commit_window_records` | histogram | records covered by each group-commit barrier |
//! | `log_syncs` / `log_poisoned` | counter/gauge | fsyncs so far; 1 when the log is poisoned (sampled) |
//! | `exec_workers` / `exec_queue_depth` / `exec_queue_high_water` | gauge | scan-pool size and queue occupancy (sampled) |
//! | `exec_tasks` / `exec_busy_nanos` / `exec_task_nanos` | counter/histogram | scan-pool tasks run and their latencies |
//! | `net_conns_live` / `net_conns_accepted` / `net_conns_reaped` | gauge/counter | sessions now / ever / idle-reaped |
//! | `net_frames_in` / `net_frames_out` / `net_bytes_in` / `net_bytes_out` | counter | framed traffic both ways (header bytes included) |
//! | `net_backpressure` | counter | times the event loop stopped reading a connection whose responses outgrew the write budget |
//! | `net_assembler_high_water` | gauge | largest frame-reassembly backlog any connection reached |
//! | `net_repl_pull_refused` | counter | replication pulls refused on the event-loop front-end |
//! | `repl_lag_bytes` / `repl_semi_sync_degraded` | gauge/counter | follower lag; semi-sync acks that degraded to async (sampled) |
//! | `repl_chunks_shipped` / `repl_bytes_shipped` / `repl_longpoll_parks` | counter | primary-side feed traffic and parked pulls |
//! | `repl_chunks_applied` / `repl_resyncs` | counter | follower-side chunks applied; full re-bootstraps |
//! | `client_retries` / `client_backoff_nanos` | counter | pool-side retry attempts and backoff slept (on [`PooledClient::telemetry`]) |
//! | `client_failovers` / `client_reconnects` | counter | pool redirects; stale pooled connections replaced |
//!
//! # Quickstart: scrub a data directory
//!
//! `--scrub` (with `--data-dir`) re-reads every segment of the log —
//! sealed and active — and verifies each record's length frame and
//! checksum end-to-end, reporting what it checked or the exact byte
//! offset of the first bad record. Alone it is an offline integrity
//! check; combined with a serving mode it runs before the server
//! starts taking connections:
//!
//! ```text
//! $ cargo run --example encrypted_sql -- --scrub --data-dir /tmp/dbph-data
//! -- durable store at /tmp/dbph-data (1 table(s) recovered)
//! -- scrub: 1 segment(s), 12 record(s), 1482 byte(s) verified
//! ```

use std::time::Duration;

use dbph::core::protocol::{ClientMessage, ServerResponse};
use dbph::core::wire::{WireDecode as _, WireEncode as _};
use dbph::core::{
    ChaosPlan, ChaosProxy, Client, DurableOptions, FinalSwpPh, FrontEnd, NetServer, PoolOptions,
    PooledClient, Replica, ReplicaOptions, RetryPolicy, Server, Transport,
};
use dbph::crypto::SecretKey;
use dbph::relation::sql::{self, ExecOutcome, Statement};
use dbph::relation::{Catalog, Tuple};

/// Builds the server for a server-side mode: durable when the user
/// passed `--data-dir` (group-committing with the given flush window),
/// in-memory otherwise.
fn make_server(
    shards: usize,
    data_dir: Option<&str>,
    flush_window: Option<Duration>,
    scrub: bool,
) -> Result<Server, Box<dyn std::error::Error>> {
    match data_dir {
        None => Ok(Server::with_shards(shards)),
        Some(dir) => {
            let options = DurableOptions {
                flush_window: flush_window.unwrap_or(Duration::ZERO),
                ..DurableOptions::default()
            };
            let server = Server::open_durable_with(dir, shards, None, options)?;
            println!(
                "-- durable store at {dir} ({} table(s) recovered)",
                server.table_names().len()
            );
            if let Some(w) = flush_window {
                println!("-- group-commit flush window: {} ms", w.as_millis());
            }
            if scrub {
                let report = server.scrub()?;
                println!(
                    "-- scrub: {} segment(s), {} record(s), {} byte(s) verified",
                    report.segments, report.records, report.bytes
                );
            }
            Ok(server)
        }
    }
}

/// Dials the session's pooled client: straight to `addr` by default;
/// with `--retry`, under a retry policy (and socket/checkout timeouts
/// so a dead server surfaces instead of hanging); with `--chaos-seed`,
/// through a seeded fault-injecting proxy. Returns the proxy guard so
/// it outlives the session.
fn make_client(
    addr: &str,
    retry: Option<u32>,
    chaos_seed: Option<u64>,
) -> Result<(PooledClient, Option<ChaosProxy>), Box<dyn std::error::Error>> {
    let options = PoolOptions {
        capacity: 2,
        retry: match retry {
            Some(attempts) => RetryPolicy {
                max_attempts: attempts.max(1),
                deadline: Some(Duration::from_secs(60)),
                ..RetryPolicy::default()
            },
            None => RetryPolicy::default(),
        },
        io_timeout: retry.map(|_| Duration::from_secs(10)),
        checkout_timeout: retry.map(|_| Duration::from_secs(30)),
        client_id: None,
    };
    match chaos_seed {
        None => Ok((PooledClient::connect_with(addr, options)?, None)),
        Some(seed) => {
            use std::net::ToSocketAddrs as _;
            let upstream = addr
                .to_socket_addrs()?
                .next()
                .ok_or("address resolved to nothing")?;
            let proxy = ChaosProxy::spawn(upstream, seed, ChaosPlan::default())?;
            println!(
                "-- chaos proxy on {} (seed {seed}): resets, torn frames, dropped acks",
                proxy.addr()
            );
            let client = PooledClient::connect_with(proxy.addr().to_string().as_str(), options)?;
            Ok((client, Some(proxy)))
        }
    }
}

/// Fetches one metrics snapshot over the wire and prints its text
/// exposition — the `--stats` / `--stats-every` operator plane.
fn print_stats(pool: &PooledClient) -> Result<(), Box<dyn std::error::Error>> {
    let response = pool.call(&ClientMessage::Stats.to_wire())?;
    match ServerResponse::from_wire(&response)? {
        ServerResponse::StatsSnapshot(snapshot) => {
            print!("{snapshot}");
            Ok(())
        }
        other => Err(format!("unexpected response to Stats: {other:?}").into()),
    }
}

/// One in-process Ping → Status round against the follower's own
/// server: the per-strike health line an operator watches while
/// armed failover counts the primary out.
fn print_follower_health(server: &Server, strikes: u32) {
    if let Ok(ServerResponse::Status {
        poisoned,
        semi_sync_degraded,
        resyncs,
        ..
    }) = ServerResponse::from_wire(&server.handle(&ClientMessage::Ping.to_wire()))
    {
        println!(
            "-- strike {strikes}/4: poisoned={poisoned} \
             semi_sync_degraded={semi_sync_degraded} resyncs={resyncs}"
        );
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--data-dir <path>` composes with any mode; extract it first.
    let data_dir = args
        .iter()
        .position(|a| a == "--data-dir")
        .map(|i| {
            args.remove(i); // the flag
            if i < args.len() {
                Ok(args.remove(i)) // its value
            } else {
                Err("usage: --data-dir <path>")
            }
        })
        .transpose()?;
    let data_dir = data_dir.as_deref();

    // `--event-loop` picks the readiness front-end for socket modes.
    let front_end = args
        .iter()
        .position(|a| a == "--event-loop")
        .map(|i| {
            args.remove(i);
            FrontEnd::EventLoop
        })
        .unwrap_or_default();

    // `--flush-window <ms>` sets the group-commit window (needs
    // `--data-dir`: without a log there is nothing to flush).
    let flush_window = args
        .iter()
        .position(|a| a == "--flush-window")
        .map(|i| {
            args.remove(i); // the flag
            if i < args.len() {
                args.remove(i) // its value
                    .parse::<u64>()
                    .map(Duration::from_millis)
                    .map_err(|_| "usage: --flush-window <milliseconds>")
            } else {
                Err("usage: --flush-window <milliseconds>")
            }
        })
        .transpose()?;
    if flush_window.is_some() && data_dir.is_none() {
        return Err("--flush-window tunes the durable log; pair it with --data-dir".into());
    }

    // `--scrub` re-verifies every log record before doing anything
    // else (needs `--data-dir`: there is nothing to scrub in memory).
    let scrub = args
        .iter()
        .position(|a| a == "--scrub")
        .map(|i| args.remove(i))
        .is_some();
    if scrub && data_dir.is_none() {
        return Err("--scrub verifies the durable log; pair it with --data-dir".into());
    }

    // `--promote` arms automatic failover for a follower.
    let promote = args
        .iter()
        .position(|a| a == "--promote")
        .map(|i| args.remove(i))
        .is_some();

    // `--stats` / `--stats-every <secs>` query the operator plane
    // instead of running the SQL script.
    let stats_once = args
        .iter()
        .position(|a| a == "--stats")
        .map(|i| args.remove(i))
        .is_some();
    let stats_every = args
        .iter()
        .position(|a| a == "--stats-every")
        .map(|i| {
            args.remove(i); // the flag
            if i < args.len() {
                args.remove(i) // its value
                    .parse::<u64>()
                    .map_err(|_| "usage: --stats-every <seconds>")
            } else {
                Err("usage: --stats-every <seconds>")
            }
        })
        .transpose()?;

    // `--retry <n>` turns on client-side retries (mutations ride the
    // idempotent envelope; the server applies each exactly once).
    let retry = args
        .iter()
        .position(|a| a == "--retry")
        .map(|i| {
            args.remove(i); // the flag
            if i < args.len() {
                args.remove(i) // its value
                    .parse::<u32>()
                    .map_err(|_| "usage: --retry <attempts>")
            } else {
                Err("usage: --retry <attempts>")
            }
        })
        .transpose()?;

    // `--chaos-seed <s>` injects seeded faults between client and
    // server, so the retry machinery has weather to prove itself in.
    let chaos_seed = args
        .iter()
        .position(|a| a == "--chaos-seed")
        .map(|i| {
            args.remove(i); // the flag
            if i < args.len() {
                args.remove(i) // its value
                    .parse::<u64>()
                    .map_err(|_| "usage: --chaos-seed <seed>")
            } else {
                Err("usage: --chaos-seed <seed>")
            }
        })
        .transpose()?;
    if chaos_seed.is_some() && retry.is_none() {
        return Err(
            "--chaos-seed injects faults; pair it with --retry <n> or the session \
                    will simply fail"
                .into(),
        );
    }

    if promote && args.first().map(String::as_str) != Some("--replicate-from") {
        return Err("--promote arms follower failover; pair it with --replicate-from".into());
    }

    if (stats_once || stats_every.is_some())
        && args.first().map(String::as_str) != Some("--connect")
    {
        return Err(
            "--stats/--stats-every query a serving process; pair them with \
                    --connect <addr>"
                .into(),
        );
    }

    match args.first().map(String::as_str) {
        None => {
            if front_end == FrontEnd::EventLoop {
                return Err(
                    "--event-loop is a socket-mode flag; use it with --listen/--net".into(),
                );
            }
            if retry.is_some() || chaos_seed.is_some() {
                return Err(
                    "--retry/--chaos-seed exercise the socket path; use them with \
                            --net or --connect"
                        .into(),
                );
            }
            if scrub {
                // Offline integrity check: open (recover), verify
                // every record, report, exit.
                make_server(1, data_dir, flush_window, true)?;
                return Ok(());
            }
            // In-process: the transport is the server itself.
            run_script(make_server(1, data_dir, flush_window, false)?)
        }
        Some("--net") => {
            // Loopback: same script, real frames on a real socket.
            let server = make_server(4, data_dir, flush_window, scrub)?;
            let handle = NetServer::spawn_with(server, "127.0.0.1:0", front_end)?;
            println!(
                "-- loopback server listening on {} ({front_end:?} front-end)",
                handle.addr()
            );
            let (pool, _chaos) = make_client(&handle.addr().to_string(), retry, chaos_seed)?;
            let result = run_script(pool);
            handle.shutdown();
            result
        }
        Some("--listen") => {
            if retry.is_some() || chaos_seed.is_some() {
                return Err(
                    "--retry/--chaos-seed are client-side flags; use them with --connect".into(),
                );
            }
            let addr = args.get(1).map_or("127.0.0.1:4460", String::as_str);
            let listener = std::net::TcpListener::bind(addr)?;
            let label = match front_end {
                FrontEnd::EventLoop => " (event-loop front-end)",
                FrontEnd::ThreadPerConnection => "",
            };
            println!(
                "-- serving encrypted tables on {}{label}",
                listener.local_addr()?
            );
            println!("-- connect with: cargo run --example encrypted_sql -- --connect {addr}");
            NetServer::serve_with(
                listener,
                make_server(4, data_dir, flush_window, scrub)?,
                front_end,
            )?;
            Ok(())
        }
        Some("--replicate-from") => {
            let dir = data_dir
                .ok_or("--replicate-from stores the follower's log; pair it with --data-dir")?;
            let primary = args
                .get(1)
                .ok_or("usage: encrypted_sql --replicate-from <primary-addr> [serve-addr]")?
                .clone();
            let serve_addr = args.get(2).map_or("127.0.0.1:4461", String::as_str);
            // The replication feed: one pooled connection to the
            // primary. Pulls long-poll on the primary, so the feed
            // must not share connections with latency-sensitive
            // traffic — it gets its own.
            let feed = PooledClient::connect(&primary, 1)?;
            let mut replica = Replica::bootstrap(feed, dir, ReplicaOptions::default())?;
            println!(
                "-- follower of {primary}: {} table(s) at stream offset {}",
                replica.server().table_names().len(),
                replica.offset()
            );
            replica.start();
            // Serve reads from the follower's store. (A primary
            // compaction re-bootstraps the follower into a fresh
            // generation; restart this process after one to re-serve
            // the new generation.)
            let handle = NetServer::spawn_with(replica.server(), serve_addr, front_end)?;
            println!("-- serving read-only follower on {}", handle.addr());
            if !promote {
                loop {
                    std::thread::sleep(Duration::from_secs(3600));
                }
            }
            // Armed failover: promote once the primary stays
            // unreachable for a few consecutive probes (a single
            // failed pull may be a blip the tailer rides out).
            let mut strikes = 0u32;
            loop {
                std::thread::sleep(Duration::from_millis(500));
                strikes = if replica.last_error().is_some() {
                    strikes + 1
                } else {
                    0
                };
                if strikes > 0 {
                    print_follower_health(&replica.server(), strikes);
                }
                if strikes >= 4 {
                    break;
                }
            }
            println!(
                "-- primary unreachable ({}); promoting",
                replica.last_error().unwrap_or_default()
            );
            let promoted = replica.promote();
            handle.shutdown();
            let handle = NetServer::spawn_with(promoted, serve_addr, front_end)?;
            println!(
                "-- promoted: serving as primary on {} (repoint clients here)",
                handle.addr()
            );
            loop {
                std::thread::sleep(Duration::from_secs(3600));
            }
        }
        Some("--connect") => {
            if data_dir.is_some() {
                return Err("--data-dir is a server-side flag; use it with --listen/--net".into());
            }
            if front_end == FrontEnd::EventLoop {
                return Err(
                    "--event-loop is a server-side flag; use it with --listen/--net".into(),
                );
            }
            let addr = args
                .get(1)
                .ok_or("usage: encrypted_sql --connect <addr>")?
                .clone();
            match retry {
                Some(n) => println!("-- connecting to {addr} (2-connection pool, {n} attempts)"),
                None => println!("-- connecting to {addr} (2-connection pool)"),
            }
            let (pool, _chaos) = make_client(addr.as_str(), retry, chaos_seed)?;
            if stats_once {
                return print_stats(&pool);
            }
            if let Some(secs) = stats_every {
                loop {
                    print_stats(&pool)?;
                    std::thread::sleep(Duration::from_secs(secs.max(1)));
                }
            }
            run_script(pool)
        }
        Some(other) => Err(format!(
            "unknown mode {other:?}; use --net, --listen [addr], or --connect <addr> \
             (server-side extras: --data-dir <path> for persistence, --event-loop for \
             the readiness front-end, --flush-window <ms> for group commit; client-side: \
             --retry <n> for exactly-once retries, --chaos-seed <s> for fault injection)"
        )
        .into()),
    }
}

/// Parses and executes the demo script against `transport` — an
/// in-process [`Server`] or a [`PooledClient`] across TCP — while a
/// local plaintext engine cross-checks every SELECT. The transport is
/// cloned into each table's crypto client; clones of a
/// [`PooledClient`] share one bounded connection pool.
fn run_script<T: Transport + Clone>(transport: T) -> Result<(), Box<dyn std::error::Error>> {
    let script = [
        "CREATE TABLE Emp (name STRING(16), dept STRING(8), salary INT)",
        "INSERT INTO Emp VALUES ('Montgomery', 'HR', 7500), ('Smith', 'IT', 4900)",
        "INSERT INTO Emp VALUES ('Jones', 'IT', 1200), ('Ng', 'IT', 4900)",
        "SELECT * FROM Emp WHERE name = 'Montgomery'",
        "SELECT name, salary FROM Emp WHERE dept = 'IT' AND salary = 4900",
        "SELECT name FROM Emp WHERE dept = 'HR' OR salary = 1200",
        "DELETE FROM Emp WHERE name = 'Jones'",
        "SELECT * FROM Emp",
        "DROP TABLE Emp",
    ];

    // Plaintext reference engine (runs locally) …
    let mut reference = Catalog::new();
    // … and the encrypted deployment (client + untrusted server).
    let master = SecretKey::from_bytes([33u8; 32]);
    let mut client: Option<Client<T>> = None;

    for statement_text in script {
        println!("sql> {statement_text}");
        let reference_outcome = sql::execute(&mut reference, statement_text)?;

        match sql::parse_statement(statement_text)? {
            Statement::CreateTable(schema) => {
                let ph = FinalSwpPh::new(schema.clone(), &master)?;
                let mut c = Client::new(ph, transport.clone());
                // A durable server may have recovered this table from
                // a previous (killed) run; the script's CREATE means
                // "start fresh", so drop any leftover best-effort.
                let _ = c.drop_table();
                // Outsource the empty table so inserts have a target.
                c.outsource(&dbph::relation::Relation::empty(schema))?;
                client = Some(c);
                println!("  created (outsourced under client key)");
            }
            Statement::Insert { rows, .. } => {
                let c = client.as_mut().expect("CREATE TABLE first");
                // Multi-row INSERTs ship as one AppendBatch message —
                // one round-trip, identical per-tuple server events.
                let tuples: Vec<Tuple> = rows.into_iter().map(Tuple::new).collect();
                c.insert_many(&tuples)?;
                println!("  inserted {} row(s) in one batch", tuples.len());
            }
            Statement::Select(stmt) => {
                let c = client.as_ref().expect("CREATE TABLE first");
                let rows = match &stmt.filter {
                    Some(dnf) => {
                        let relation = c.select_dnf(dnf)?;
                        dbph::relation::exec::project(&relation, &stmt.projection)?
                    }
                    None => {
                        // Whole-table reads stream as bounded chunks —
                        // the transfer that used to buffer the table
                        // in one frame.
                        let all = c.fetch_all_chunked(dbph::core::protocol::DEFAULT_CHUNK_BYTES)?;
                        dbph::relation::exec::project(&all, &stmt.projection)?
                    }
                };
                for row in &rows {
                    println!("  {row}");
                }
                // Cross-check against the plaintext engine.
                if let ExecOutcome::Rows { rows: expected, .. } = reference_outcome {
                    let mut a = rows.clone();
                    let mut b = expected.clone();
                    a.sort();
                    b.sort();
                    assert_eq!(a, b, "encrypted result diverged from plaintext reference");
                    println!("  ✓ matches plaintext reference ({} row(s))", rows.len());
                }
            }
            Statement::Delete { filter, .. } => {
                let c = client.as_ref().expect("CREATE TABLE first");
                let removed = c.delete(&filter)?;
                println!("  deleted {removed} row(s)");
            }
            Statement::DropTable(_) => {
                if let Some(c) = client.take() {
                    // Leave a shared server clean so --connect runs
                    // back-to-back against one --listen process.
                    c.drop_table()?;
                }
                println!("  dropped");
            }
        }
        println!();
    }
    Ok(())
}
