//! Sublinear search with the opt-in encrypted inverted index — and
//! the leakage it costs.
//!
//! The reference server answers every query by scanning the whole
//! table (one keyed match check per stored word). This example flips
//! on the encrypted multimap, shows a warmed point query answering
//! orders of magnitude faster with byte-identical results, and then
//! audits the price: the server's at-rest image now carries one
//! posting list per queried label, whose *lengths* rank exactly like
//! the plaintext value distribution.
//!
//! Run with: `cargo run --release --example indexed_search`

use std::time::Instant;

use dbph::core::{Client, FinalSwpPh, Server};
use dbph::crypto::SecretKey;
use dbph::relation::Query;
use dbph::workload::EmployeeGen;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rows = 20_000;
    let relation = EmployeeGen {
        rows,
        ..EmployeeGen::default()
    }
    .generate(5);
    let key = SecretKey::from_bytes([42u8; 32]);

    // Two servers, same session: the reference scan and the indexed
    // plan. The index is server-side and opt-in; the client code is
    // identical.
    let scan_server = Server::with_shards(4);
    let mut scan_client = Client::new(FinalSwpPh::new(EmployeeGen::schema(), &key)?, scan_server);

    let indexed_server = Server::with_shards(4);
    indexed_server.enable_index();
    let mut indexed_client = Client::new(
        FinalSwpPh::new(EmployeeGen::schema(), &key)?,
        indexed_server.clone(),
    );

    println!("Outsourcing {rows} tuples to both servers…");
    scan_client.outsource(&relation)?;
    indexed_client.outsource(&relation)?;

    // Warm the posting: the first probe of a term scans once and
    // memoizes; every later query is a multimap lookup plus a delta
    // scan over whatever was appended since.
    let query = Query::select("name", "emp-0000042");
    let _ = indexed_client.select(&query)?;

    let started = Instant::now();
    let scanned = scan_client.select(&query)?;
    let scan_time = started.elapsed();

    let started = Instant::now();
    let indexed = indexed_client.select(&query)?;
    let index_time = started.elapsed();

    assert!(scanned.same_multiset(&indexed), "plans must agree");
    println!("Point query, full scan:    {scan_time:?}");
    println!("Point query, warm posting: {index_time:?}");
    println!(
        "Speedup: {:.0}x (byte-identical results — the SWP match is \
         deterministic, false positives included)",
        scan_time.as_secs_f64() / index_time.as_secs_f64().max(1e-9)
    );

    // The price: the multimap is part of Eve's at-rest state. Probe
    // the departments and look at what the disk now reveals.
    for dept in 0..8 {
        let _ = indexed_client.select(&Query::select("dept", format!("dept-{dept:02}")))?;
    }
    let mut postings = indexed_server.index_at_rest(indexed_client.table_name());
    postings.sort_by_key(|(_, ids)| std::cmp::Reverse(ids.len()));
    println!("\nEve's at-rest index image ({} labels):", postings.len());
    for (label, ids) in postings.iter().take(5) {
        println!(
            "  label {:02x}{:02x}{:02x}… → {} docs",
            label[0],
            label[1],
            label[2],
            ids.len()
        );
    }
    println!(
        "Posting lengths are result-set sizes made durable: ranked \
         against a known value distribution they recover attribute \
         frequencies (see crates/games attacks::posting). The scan-only \
         server keeps no such state — sublinear time is bought with \
         at-rest access-pattern leakage."
    );
    Ok(())
}
