//! Group-commit durability: one fsync per flush window, never a
//! weaker promise.
//!
//! PR 5 pinned the per-mutation fsync discipline; this suite holds the
//! group-commit committer to the same observable contract while
//! verifying it actually shares barriers:
//!
//! 1. **Fsync sharing.** Concurrent writers inside one flush window
//!    ride a single `fdatasync` — the sync counter grows far slower
//!    than the mutation count — and every acked mutation is still
//!    there after an unclean kill.
//! 2. **Byte-identical log.** A serial session writes the exact same
//!    active-segment bytes under group commit as under
//!    fsync-per-mutation: the committer changes *when* the barrier
//!    runs, never what hits the disk.
//! 3. **Fail closed.** A failing `fdatasync` fails every waiter in the
//!    window — no ack escapes a broken barrier — and poisons the log
//!    so later mutations are refused while reads keep answering.
//!
//! (Crash-cut recovery under group commit is folded into the PR 5
//! proptest in `tests/durability.rs`, which now runs both modes.)

use std::sync::Arc;
use std::time::Duration;

use dbph::core::protocol::{ClientMessage, ServerResponse};
use dbph::core::wire::{WireDecode as _, WireEncode as _};
use dbph::core::{DurableOptions, Server, TempDir};
use dbph::swp::{CipherWord, SwpParams};

fn params() -> SwpParams {
    SwpParams::new(13, 4, 32).unwrap()
}

fn word(seed: u64) -> CipherWord {
    CipherWord(vec![(seed % 251) as u8; 13])
}

fn doc(id: u64) -> (u64, Vec<CipherWord>) {
    (id, vec![word(id)])
}

fn empty_table() -> dbph::core::EncryptedTable {
    dbph::core::EncryptedTable {
        params: params(),
        docs: vec![],
        next_doc_id: 0,
    }
}

fn create_msg(name: &str) -> Vec<u8> {
    ClientMessage::CreateTable {
        name: name.into(),
        table: empty_table(),
    }
    .to_wire()
}

fn append_msg(name: &str, id: u64) -> Vec<u8> {
    let (doc_id, words) = doc(id);
    ClientMessage::Append {
        name: name.into(),
        doc_id,
        words,
    }
    .to_wire()
}

fn fetch_msg(name: &str) -> Vec<u8> {
    ClientMessage::FetchAll { name: name.into() }.to_wire()
}

fn decode(resp: &[u8]) -> ServerResponse {
    ServerResponse::from_wire(resp).expect("well-formed response")
}

fn is_ok(resp: &[u8]) -> bool {
    !matches!(decode(resp), ServerResponse::Error(_))
}

#[test]
fn concurrent_writers_share_fsyncs_and_all_recover() {
    const WRITERS: usize = 8;
    const APPENDS: u64 = 25;

    let tmp = TempDir::new("group-share").unwrap();
    let options = DurableOptions {
        flush_window: Duration::from_millis(2),
        ..DurableOptions::default()
    };
    let server = Server::open_durable_with(tmp.path(), 3, Some(2), options.clone()).unwrap();

    // Tables are created serially so the concurrent phase is pure
    // appends — each thread owns one table, so per-table order is
    // deterministic no matter how the windows interleave.
    for w in 0..WRITERS {
        assert!(is_ok(&server.handle(&create_msg(&format!("w{w}")))));
    }
    let log = Arc::clone(server.durable_log().unwrap());
    let syncs_after_setup = log.sync_count();

    let threads: Vec<_> = (0..WRITERS)
        .map(|w| {
            let server = server.clone();
            std::thread::spawn(move || {
                let name = format!("w{w}");
                for id in 0..APPENDS {
                    assert!(
                        is_ok(&server.handle(&append_msg(&name, id))),
                        "append {id} on {name} must ack"
                    );
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    // The whole point: 200 acked mutations must not have cost 200
    // barriers. Any real batching at all lands far under half.
    let append_syncs = log.sync_count() - syncs_after_setup;
    let total = WRITERS as u64 * APPENDS;
    assert!(append_syncs >= 1, "durable acks need at least one sync");
    assert!(
        append_syncs < total / 2,
        "group commit shared no barriers: {append_syncs} syncs for {total} mutations"
    );

    // Unclean kill: every ack above implies the record was inside a
    // completed barrier, so recovery must replay all of them.
    drop(log);
    drop(server);
    let recovered = Server::open_durable_with(tmp.path(), 3, Some(2), options).unwrap();
    let reference = Server::with_shards(3);
    for w in 0..WRITERS {
        let name = format!("w{w}");
        let _ = reference.handle(&create_msg(&name));
        for id in 0..APPENDS {
            let _ = reference.handle(&append_msg(&name, id));
        }
    }
    for w in 0..WRITERS {
        let name = format!("w{w}");
        assert_eq!(
            recovered.handle(&fetch_msg(&name)),
            reference.handle(&fetch_msg(&name)),
            "recovered {name} lost acked mutations"
        );
    }
}

#[test]
fn serial_group_commit_log_is_byte_identical_to_fsync_per_mutation() {
    let session = || {
        let mut msgs = vec![create_msg("t")];
        msgs.extend((0..12).map(|id| append_msg("t", id)));
        msgs.push(
            ClientMessage::DeleteDocs {
                name: "t".into(),
                doc_ids: vec![3, 7],
            }
            .to_wire(),
        );
        msgs
    };

    let run = |group_commit: bool| {
        let tmp = TempDir::new("group-bytes").unwrap();
        let options = DurableOptions {
            group_commit,
            ..DurableOptions::default()
        };
        let server = Server::open_durable_with(tmp.path(), 2, Some(1), options).unwrap();
        let responses: Vec<_> = session().iter().map(|m| server.handle(m)).collect();
        let log = Arc::clone(server.durable_log().unwrap());
        let bytes = std::fs::read(log.active_segment_path()).unwrap();
        (responses, bytes, log.sync_count())
    };

    let (group_responses, group_bytes, group_syncs) = run(true);
    let (solo_responses, solo_bytes, solo_syncs) = run(false);

    assert_eq!(group_responses, solo_responses, "responses diverged");
    assert_eq!(
        group_bytes, solo_bytes,
        "group commit changed the on-disk record bytes"
    );
    // A lone serial writer leads every window itself: same barrier
    // count, just reached through the shared committer.
    assert_eq!(group_syncs, solo_syncs, "serial sync cadence diverged");
}

#[test]
fn serial_leader_skips_the_flush_window_sleep() {
    // A lone writer leads every window itself; with nobody else to
    // wait for, holding the window open buys no batching and only adds
    // the window's sleep to every ack. The leader must detect the
    // solo case and sync immediately — same bytes, same sync cadence,
    // none of the latency.
    let session = |server: &Server| {
        assert!(is_ok(&server.handle(&create_msg("t"))));
        for id in 0..12 {
            assert!(is_ok(&server.handle(&append_msg("t", id))));
        }
    };

    let run = |flush_window: Duration| {
        let tmp = TempDir::new("group-serial").unwrap();
        let options = DurableOptions {
            flush_window,
            ..DurableOptions::default()
        };
        let server = Server::open_durable_with(tmp.path(), 2, Some(1), options).unwrap();
        let started = std::time::Instant::now();
        session(&server);
        let elapsed = started.elapsed();
        let log = Arc::clone(server.durable_log().unwrap());
        let bytes = std::fs::read(log.active_segment_path()).unwrap();
        (elapsed, bytes, log.sync_count())
    };

    // 200 ms × 13 serial mutations would be 2.6 s of pure sleeping if
    // the leader waited out each window; the skip makes the window
    // setting irrelevant to a serial session.
    let (wide_elapsed, wide_bytes, wide_syncs) = run(Duration::from_millis(200));
    let (zero_elapsed, zero_bytes, zero_syncs) = run(Duration::ZERO);

    assert_eq!(wide_bytes, zero_bytes, "window width changed record bytes");
    assert_eq!(wide_syncs, zero_syncs, "window width changed sync cadence");
    assert!(
        wide_elapsed < Duration::from_millis(1300),
        "serial leader slept through flush windows: {wide_elapsed:?} \
         (zero-window reference: {zero_elapsed:?})"
    );
}

#[test]
fn failing_fdatasync_fails_every_waiter_in_the_window_closed() {
    const WAITERS: usize = 4;

    let tmp = TempDir::new("group-poison").unwrap();
    let options = DurableOptions {
        flush_window: Duration::from_millis(20),
        ..DurableOptions::default()
    };
    let server = Server::open_durable_with(tmp.path(), 2, Some(1), options).unwrap();
    for w in 0..WAITERS {
        assert!(is_ok(&server.handle(&create_msg(&format!("p{w}")))));
    }
    let log = Arc::clone(server.durable_log().unwrap());

    // The next barrier will fail. Every mutation that lands in that
    // window — whichever thread ends up leading it — must be refused;
    // none may ack against a sync that never happened.
    log.inject_sync_failures(1);
    let threads: Vec<_> = (0..WAITERS)
        .map(|w| {
            let server = server.clone();
            std::thread::spawn(move || server.handle(&append_msg(&format!("p{w}"), 0)))
        })
        .collect();
    for t in threads {
        let resp = t.join().unwrap();
        assert!(
            matches!(decode(&resp), ServerResponse::Error(_)),
            "a waiter was acked out of a failed flush window"
        );
    }
    assert!(log.is_poisoned(), "a failed barrier must poison the log");

    // Fail closed: later mutations are refused outright...
    assert!(
        !is_ok(&server.handle(&append_msg("p0", 1))),
        "mutations must be refused after poisoning"
    );
    // ...while reads — which never touch the log — still answer.
    assert!(
        is_ok(&server.handle(&fetch_msg("p0"))),
        "reads must survive a poisoned log"
    );
}
