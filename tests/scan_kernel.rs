//! PR 4 equivalence obligations for the allocation-free scan hot path.
//!
//! Two components may never change a single decision:
//!
//! 1. **`ScanKernel` ≡ scalar `matches`.** The 4-lane kernel stages
//!    words into an interleaved SHA-256 PRF pipeline; for every random
//!    parameter shape (`word_len` / `check_len` / `check_bits`), every
//!    lane-remainder size (0–3 trailing words at the flush), and every
//!    word — consistent, random, or length-mismatched — its decision
//!    must equal the scalar reference, in push order.
//! 2. **`WordArena` ≡ `Vec<Doc>`.** The columnar shard storage must
//!    reassemble documents byte-identically to the boxed layout under
//!    arbitrary append/delete/repartition churn, including words whose
//!    length deviates from the table's word length (wire-legal; they
//!    never match but must round-trip verbatim).
//!
//! Together with `tests/sharding.rs` (responses and transcripts across
//! shard counts × pool sizes) these pin the tentpole claim: the kernel
//! and the arena change *when* scan work happens, never what Eve sees.

use dbph::core::storage::Doc;
use dbph::core::WordArena;
use dbph::swp::kernel::LANES;
use dbph::swp::{matches, CipherWord, PreparedTrapdoor, ScanKernel, SwpParams};

use proptest::prelude::*;

/// `TrapdoorData` fixture: raw (target, key) bytes, arbitrary lengths.
#[derive(Debug, Clone)]
struct RawTrapdoor {
    target: Vec<u8>,
    key: Vec<u8>,
}

impl dbph::swp::TrapdoorData for RawTrapdoor {
    fn target(&self) -> &[u8] {
        &self.target
    }
    fn check_key(&self) -> &[u8] {
        &self.key
    }
}

/// Parameters from three independent draws: `word_len` in 2..=40,
/// `check_len` folded into 1..word_len, `check_bits` folded into
/// 1..=8*check_len (the shim has no flat-map, so dependent fields are
/// derived inside the map).
fn arb_params() -> impl Strategy<Value = SwpParams> {
    (2usize..=40, any::<u16>(), any::<u16>()).prop_map(|(word_len, c, b)| {
        let check_len = 1 + (c as usize) % (word_len - 1);
        let check_bits = 1 + u32::from(b) % (8 * check_len as u32);
        SwpParams::new(word_len, check_len, check_bits).unwrap()
    })
}

/// A cipher word guaranteed to match `(target, key)` under `params`.
fn consistent_word(params: &SwpParams, target: &[u8], key: &[u8], salt: &[u8]) -> Vec<u8> {
    use dbph::crypto::{HmacPrf, Prf};
    let split = params.stream_len();
    let s: Vec<u8> = (0..split)
        .map(|i| salt[i % salt.len().max(1)] ^ (i as u8).wrapping_mul(37))
        .collect();
    let f = HmacPrf::new(key).eval(&s, params.check_len);
    let mut c = Vec::with_capacity(params.word_len);
    c.extend(target[..split].iter().zip(&s).map(|(a, b)| a ^ b));
    c.extend(target[split..].iter().zip(&f).map(|(a, b)| a ^ b));
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Kernel decisions equal scalar decisions, in order, for random
    /// parameters, random/consistent/ragged words, and every lane
    /// remainder (word counts span 0..=2*LANES+3).
    #[test]
    fn kernel_matches_scalar_reference(
        params in arb_params(),
        key in proptest::collection::vec(any::<u8>(), 0..40),
        salt in proptest::collection::vec(any::<u8>(), 1..8),
        shapes in proptest::collection::vec((0u8..4, any::<u8>()), 0..(2 * LANES + 4)),
        target_ok in any::<bool>(),
    ) {
        let target: Vec<u8> = if target_ok {
            (0..params.word_len).map(|i| salt[i % salt.len()] ^ i as u8).collect()
        } else {
            vec![0xAB; params.word_len + 1] // dead trapdoor: wrong length
        };
        let td = RawTrapdoor { target: target.clone(), key: key.clone() };
        let prepared = PreparedTrapdoor::new(&td);

        // Build the word list: consistent / random / short / long.
        let words: Vec<Vec<u8>> = shapes.iter().enumerate().map(|(i, &(kind, fill))| {
            match kind {
                0 if target_ok => consistent_word(&params, &target, &key, &[salt[i % salt.len()], fill]),
                1 => (0..params.word_len).map(|j| fill ^ j as u8).collect(),
                2 => vec![fill; params.word_len.saturating_sub(1)],
                _ => vec![fill; params.word_len + 1 + (i % 3)],
            }
        }).collect();

        // Kernel decisions, via the streaming API.
        let mut kernel = ScanKernel::new(params, &prepared);
        let mut got: Vec<(u32, bool)> = Vec::new();
        {
            let mut sink = |tag: u32, ok: bool| got.push((tag, ok));
            for (i, w) in words.iter().enumerate() {
                kernel.push(i as u32, w, &mut sink);
            }
            kernel.flush(&mut sink);
        }

        // Scalar reference: both the free function and the prepared
        // path (themselves pinned equal in the swp crate's tests).
        let want: Vec<(u32, bool)> = words.iter().enumerate().map(|(i, w)| {
            let cw = CipherWord(w.clone());
            let free = matches(&params, &td, &cw);
            let prep = prepared.matches(&params, &cw);
            prop_assert_eq!(free, prep, "scalar paths diverged");
            Ok((i as u32, free))
        }).collect::<Result<_, TestCaseError>>()?;

        prop_assert_eq!(&got, &want, "kernel diverged from scalar at {:?}", params);
        if target_ok {
            // Consistent words must actually match (the sweep is not vacuous).
            for (i, &(kind, _)) in shapes.iter().enumerate() {
                if kind == 0 {
                    prop_assert!(got[i].1, "consistent word {} rejected", i);
                }
            }
        } else {
            prop_assert!(got.iter().all(|&(_, ok)| !ok), "dead trapdoor matched");
        }
    }

    /// `matches_many` over a packed slot buffer equals per-slot scalar
    /// decisions (the arena fast path's exact shape).
    #[test]
    fn matches_many_equals_scalar_per_slot(
        params in arb_params(),
        key in proptest::collection::vec(any::<u8>(), 1..34),
        seeds in proptest::collection::vec(any::<u8>(), 0..23),
    ) {
        let target: Vec<u8> = (0..params.word_len).map(|i| (i as u8) ^ 0x3C).collect();
        let prepared = PreparedTrapdoor::new(&RawTrapdoor { target: target.clone(), key: key.clone() });
        let mut slots = Vec::new();
        for (i, &seed) in seeds.iter().enumerate() {
            if i % 3 == 0 {
                slots.extend(consistent_word(&params, &target, &key, &[seed]));
            } else {
                slots.extend((0..params.word_len).map(|j| seed ^ (j as u8).wrapping_mul(11)));
            }
        }
        let mut kernel = ScanKernel::new(params, &prepared);
        let mut got = Vec::new();
        kernel.matches_many(&slots, &mut |tag, ok| got.push((tag, ok)));
        let want: Vec<(u32, bool)> = slots
            .chunks_exact(params.word_len)
            .enumerate()
            .map(|(i, w)| (i as u32, prepared.matches_bytes(&params, w)))
            .collect();
        prop_assert_eq!(got, want);
    }

    /// Columnar arena ≡ boxed docs under arbitrary append/delete
    /// churn: byte-identical reassembly, sizes, and word views — with
    /// irregular word lengths mixed in.
    #[test]
    fn arena_roundtrips_boxed_docs_under_churn(
        word_len in 1usize..20,
        ops in proptest::collection::vec(
            (any::<bool>(), 0u8..6, any::<u8>(), any::<u8>()), 1..60),
    ) {
        let mut arena = WordArena::new(word_len);
        let mut reference: Vec<Doc> = Vec::new();
        let mut next_id = 0u64;
        for (is_append, words, fill, pick) in ops {
            if is_append || reference.is_empty() {
                let doc: Vec<CipherWord> = (0..words).map(|w| {
                    // Length drifts around word_len: exact, short, long, empty.
                    let len = match (fill ^ w) % 4 {
                        0 | 1 => word_len,
                        2 => word_len.saturating_sub(usize::from(w) + 1),
                        _ => word_len + usize::from(w),
                    };
                    CipherWord(vec![fill.wrapping_add(w); len])
                }).collect();
                arena.push(next_id, &doc);
                reference.push((next_id, doc));
                next_id += 1;
            } else {
                // Delete a pseudo-random subset by id.
                let victim = reference[usize::from(pick) % reference.len()].0;
                arena.retain(|id| id != victim);
                reference.retain(|(id, _)| *id != victim);
            }
            prop_assert_eq!(arena.len(), reference.len());
            prop_assert_eq!(&arena.to_docs(), &reference);
            prop_assert_eq!(
                arena.ciphertext_bytes(),
                reference.iter().map(|(_, ws)| ws.iter().map(|w| w.0.len()).sum::<usize>()).sum::<usize>()
            );
        }
        // Canonical representation: equal to an arena built in one shot.
        prop_assert_eq!(arena, WordArena::from_docs(word_len, reference));
    }
}

/// Deterministic edge pin (outside proptest so it always runs the
/// same): an arena rebuilt through interleaved churn and a sharded
/// table repartition agree with the boxed reference down to each word
/// view.
#[test]
fn arena_word_views_are_exact() {
    let word_len = 6usize;
    let docs: Vec<Doc> = (0..40u64)
        .map(|i| {
            let words = (0..(i % 4))
                .map(|w| {
                    let len = if (i + w) % 5 == 0 {
                        word_len + 2
                    } else {
                        word_len
                    };
                    CipherWord(vec![(i * 7 + w) as u8; len])
                })
                .collect();
            (i, words)
        })
        .collect();
    let arena = WordArena::from_docs(word_len, docs.clone());
    for (i, (id, words)) in docs.iter().enumerate() {
        assert_eq!(arena.doc_id(i), *id);
        let range = arena.word_range(i);
        assert_eq!(range.len(), words.len());
        for (w, word) in range.zip(words) {
            assert_eq!(arena.word(w), &word.0[..], "word view diverged");
            match arena.regular_slot(w) {
                Some(slot) => assert_eq!(slot, &word.0[..]),
                None => assert_ne!(word.0.len(), word_len),
            }
        }
    }
}
