//! Durability must be observationally invisible — and crash-proof.
//!
//! The paper's provider durably holds Alex's data; this suite holds the
//! segment-log backend to the two obligations that makes testable:
//!
//! 1. **Byte-identical behavior.** A durable server driven by any
//!    session produces the same response bytes *and* the same
//!    [`Observer`] transcript as an in-memory server driven by the
//!    same session — across shard counts, pool sizes, and both
//!    transports. The disk image is made of exactly the mutation
//!    messages and ciphertext Eve already observes, so persistence
//!    must change nothing she can record.
//! 2. **Exact crash recovery.** After an unclean kill — including a
//!    kill that tears the last record mid-write, modeled by truncating
//!    the active segment at an *arbitrary byte offset* — reopening the
//!    data directory recovers precisely the fully-fsync'd prefix of
//!    the session: `FetchAll`/query responses are byte-identical to a
//!    reference store that replayed only that prefix. Torn tails are
//!    truncated; never a panic, never a partial apply.

use dbph::core::protocol::{ClientMessage, ServerResponse, WireTrapdoor};
use dbph::core::wire::{WireDecode as _, WireEncode as _};
use dbph::core::{DurableOptions, NetServer, PooledClient, Server, TempDir, Transport};
use dbph::swp::{CipherWord, SwpParams};

use proptest::prelude::*;

fn params() -> SwpParams {
    SwpParams::new(13, 4, 32).unwrap()
}

fn word(seed: u64) -> CipherWord {
    CipherWord(vec![(seed % 251) as u8; 13])
}

/// A document with one regular word, plus an irregular-length word for
/// every third id — recovery must round-trip wire-legal deviants too.
fn doc(id: u64) -> (u64, Vec<CipherWord>) {
    let mut words = vec![word(id)];
    if id.is_multiple_of(3) {
        words.push(CipherWord(vec![(id % 251) as u8; 5]));
    }
    (id, words)
}

fn table(n: usize) -> dbph::core::EncryptedTable {
    dbph::core::EncryptedTable {
        params: params(),
        docs: (0..n as u64).map(doc).collect(),
        next_doc_id: n as u64,
    }
}

fn dead_trapdoor() -> WireTrapdoor {
    WireTrapdoor {
        target: vec![7; 13],
        check_key: vec![0; 32],
    }
}

/// A session exercising every message class the server knows —
/// mutations, queries, batches, chunked fetches (including the clamp
/// path), error paths — so the equality assertions cover the full
/// protocol surface, `FetchChunk` events included.
fn session_messages() -> Vec<Vec<u8>> {
    vec![
        ClientMessage::CreateTable {
            name: "t1".into(),
            table: table(8),
        }
        .to_wire(),
        ClientMessage::CreateTable {
            name: "t2".into(),
            table: table(0),
        }
        .to_wire(),
        ClientMessage::Append {
            name: "t1".into(),
            doc_id: 8,
            words: vec![word(8)],
        }
        .to_wire(),
        ClientMessage::AppendBatch {
            name: "t1".into(),
            docs: vec![doc(9), doc(10), doc(11)],
        }
        .to_wire(),
        ClientMessage::Query {
            name: "t1".into(),
            terms: vec![dead_trapdoor()],
        }
        .to_wire(),
        ClientMessage::QueryBatch {
            name: "t1".into(),
            queries: vec![vec![], vec![dead_trapdoor()]],
        }
        .to_wire(),
        ClientMessage::FetchChunk {
            name: "t1".into(),
            token: 0,
            max_bytes: 64,
        }
        .to_wire(),
        ClientMessage::FetchChunk {
            name: "t1".into(),
            token: 3,
            max_bytes: 1,
        }
        .to_wire(),
        ClientMessage::FetchChunk {
            name: "t1".into(),
            token: 0,
            max_bytes: u64::MAX,
        }
        .to_wire(),
        ClientMessage::DeleteDocs {
            name: "t1".into(),
            doc_ids: vec![2, 2, 5, 999],
        }
        .to_wire(),
        ClientMessage::FetchAll { name: "t1".into() }.to_wire(),
        ClientMessage::DropTable { name: "t2".into() }.to_wire(),
        // Error paths: malformed bytes, unknown tables.
        vec![0xFF, 0x00],
        ClientMessage::Query {
            name: "nope".into(),
            terms: vec![],
        }
        .to_wire(),
        ClientMessage::FetchChunk {
            name: "nope".into(),
            token: 0,
            max_bytes: 64,
        }
        .to_wire(),
    ]
}

/// Read-only probes replayed against a recovered server and its
/// uninterrupted reference — every byte must agree.
fn probe_messages() -> Vec<Vec<u8>> {
    vec![
        ClientMessage::FetchAll { name: "t1".into() }.to_wire(),
        ClientMessage::FetchAll { name: "t2".into() }.to_wire(),
        ClientMessage::Query {
            name: "t1".into(),
            terms: vec![dead_trapdoor()],
        }
        .to_wire(),
        ClientMessage::Query {
            name: "t1".into(),
            terms: vec![],
        }
        .to_wire(),
        ClientMessage::FetchChunk {
            name: "t1".into(),
            token: 0,
            max_bytes: 48,
        }
        .to_wire(),
    ]
}

fn replay<T: Transport>(transport: &T, messages: &[Vec<u8>]) -> Vec<Vec<u8>> {
    messages
        .iter()
        .map(|m| transport.call(m).expect("transport call"))
        .collect()
}

#[test]
fn durable_equals_in_memory_across_shards_and_workers() {
    let messages = session_messages();
    let probes = probe_messages();
    for shards in [1usize, 2, 5] {
        for workers in [1usize, 4] {
            let mem = Server::with_pool(shards, workers);
            let mem_responses = replay(&mem, &messages);

            let tmp = TempDir::new("equiv").unwrap();
            let durable = Server::open_durable_with(
                tmp.path(),
                shards,
                Some(workers),
                DurableOptions::default(),
            )
            .unwrap();
            let durable_responses = replay(&durable, &messages);

            assert_eq!(
                durable_responses, mem_responses,
                "durable responses diverged at {shards} shard(s) × {workers} worker(s)"
            );
            assert_eq!(
                durable.observer().events(),
                mem.observer().events(),
                "durable transcript diverged at {shards} shard(s) × {workers} worker(s)"
            );

            // Unclean kill: every record was fsync'd per message, so
            // dropping the server with no goodbye loses nothing.
            drop(durable);
            let recovered = Server::open_durable_with(
                tmp.path(),
                shards,
                Some(workers),
                DurableOptions::default(),
            )
            .unwrap();
            let mem_events_before = mem.observer().events().len();
            assert_eq!(
                replay(&recovered, &probes),
                replay(&mem, &probes),
                "post-restart probes diverged at {shards} shard(s) × {workers} worker(s)"
            );
            // The recovered server's (fresh) transcript must equal the
            // probe segment of the uninterrupted server's transcript.
            assert_eq!(
                recovered.observer().events(),
                mem.observer().events()[mem_events_before..],
                "post-restart transcript diverged"
            );
        }
    }
}

#[test]
fn durable_equals_in_memory_over_tcp_and_survives_restart() {
    let messages = session_messages();
    let probes = probe_messages();

    // Reference: the uninterrupted in-memory server, in-process.
    let mem = Server::with_shards(3);
    let mem_responses = replay(&mem, &messages);

    // A durable server behind a real socket.
    let tmp = TempDir::new("tcp-equiv").unwrap();
    let durable = Server::open_durable(tmp.path(), 3).unwrap();
    let handle = NetServer::spawn(durable.clone(), "127.0.0.1:0").unwrap();
    let pool = PooledClient::connect(handle.addr(), 2).unwrap();
    let tcp_responses = replay(&pool, &messages);
    assert_eq!(tcp_responses, mem_responses, "TCP × durable diverged");
    assert_eq!(durable.observer().events(), mem.observer().events());

    // Kill the whole deployment — front-end and store — and restart
    // both from the data directory.
    handle.shutdown();
    drop(durable);
    let recovered = Server::open_durable(tmp.path(), 3).unwrap();
    let handle = NetServer::spawn(recovered.clone(), "127.0.0.1:0").unwrap();
    let pool = PooledClient::connect(handle.addr(), 2).unwrap();
    let mem_events_before = mem.observer().events().len();
    assert_eq!(
        replay(&pool, &probes),
        replay(&mem, &probes),
        "post-restart TCP probes diverged"
    );
    assert_eq!(
        recovered.observer().events(),
        mem.observer().events()[mem_events_before..]
    );
    handle.shutdown();
}

#[test]
fn crypto_client_session_survives_restart() {
    use dbph::core::{Client, FinalSwpPh};
    use dbph::crypto::SecretKey;
    use dbph::relation::schema::emp_schema;
    use dbph::relation::{tuple, Query, Relation};

    let scheme = || FinalSwpPh::new(emp_schema(), &SecretKey::from_bytes([11u8; 32])).unwrap();
    let emp = Relation::from_tuples(
        emp_schema(),
        vec![
            tuple!["Montgomery", "HR", 7500i64],
            tuple!["Smith", "IT", 4900i64],
            tuple!["Jones", "IT", 1200i64],
        ],
    )
    .unwrap();

    let tmp = TempDir::new("crypto").unwrap();
    {
        let server = Server::open_durable(tmp.path(), 2).unwrap();
        let mut client = Client::new(scheme(), server);
        client.outsource(&emp).unwrap();
        client.insert(&tuple!["Kim", "HR", 9000i64]).unwrap();
        // kill -9: just drop everything.
    }
    let server = Server::open_durable(tmp.path(), 2).unwrap();
    let client = Client::new(scheme(), server);
    let all = client.fetch_all().unwrap();
    assert_eq!(all.len(), 4, "the insert must have survived the kill");
    let it = client.select(&Query::select("dept", "IT")).unwrap();
    assert_eq!(it.len(), 2);
    // And the chunked path reads the same recovered ciphertext.
    assert!(client.fetch_all_chunked(64).unwrap().same_multiset(&all));
}

// --- randomized crash recovery ---------------------------------------------

/// An abstract mutation; lowering produces only *valid* mutations (the
/// server applies every one), so log records correspond 1:1 to
/// messages and the fsync'd prefix is exactly a message prefix.
#[derive(Clone, Debug)]
enum MutOp {
    Create(u8),
    Append(u8),
    AppendBatch(u8, u8),
    Delete(u8, Vec<u8>),
    Drop(u8),
}

fn arb_mut_op() -> impl Strategy<Value = MutOp> {
    prop_oneof![
        (0u8..6).prop_map(MutOp::Create),
        (0u8..2).prop_map(MutOp::Append),
        ((0u8..2), (1u8..5)).prop_map(|(t, n)| MutOp::AppendBatch(t, n)),
        ((0u8..2), proptest::collection::vec(0u8..20, 0..4))
            .prop_map(|(t, ids)| MutOp::Delete(t, ids)),
        (0u8..2).prop_map(MutOp::Drop),
    ]
}

/// Lowers abstract ops to concrete wire messages over two table names,
/// skipping ops that would be rejected (create-on-existing, mutate-on-
/// missing) so every emitted message writes exactly one log record.
fn lower_mutations(ops: &[MutOp]) -> Vec<Vec<u8>> {
    let names = ["a", "b"];
    // Per table: Some(next_doc_id) when it exists.
    let mut state: [Option<u64>; 2] = [None, None];
    let mut msgs = Vec::new();
    for op in ops {
        match op {
            MutOp::Create(x) => {
                let t = (*x % 2) as usize;
                if state[t].is_none() {
                    let n = (*x % 5) as usize;
                    state[t] = Some(n as u64);
                    msgs.push(
                        ClientMessage::CreateTable {
                            name: names[t].into(),
                            table: table(n),
                        }
                        .to_wire(),
                    );
                }
            }
            MutOp::Append(t) => {
                let t = (*t % 2) as usize;
                if let Some(next) = state[t].as_mut() {
                    let (doc_id, words) = doc(*next);
                    *next += 1;
                    msgs.push(
                        ClientMessage::Append {
                            name: names[t].into(),
                            doc_id,
                            words,
                        }
                        .to_wire(),
                    );
                }
            }
            MutOp::AppendBatch(t, n) => {
                let t = (*t % 2) as usize;
                if let Some(next) = state[t].as_mut() {
                    let docs: Vec<_> = (0..*n as u64).map(|k| doc(*next + k)).collect();
                    *next += u64::from(*n);
                    msgs.push(
                        ClientMessage::AppendBatch {
                            name: names[t].into(),
                            docs,
                        }
                        .to_wire(),
                    );
                }
            }
            MutOp::Delete(t, ids) => {
                let t = (*t % 2) as usize;
                if state[t].is_some() {
                    msgs.push(
                        ClientMessage::DeleteDocs {
                            name: names[t].into(),
                            doc_ids: ids.iter().map(|&i| u64::from(i)).collect(),
                        }
                        .to_wire(),
                    );
                }
            }
            MutOp::Drop(t) => {
                let t = (*t % 2) as usize;
                if state[t].take().is_some() {
                    msgs.push(
                        ClientMessage::DropTable {
                            name: names[t].into(),
                        }
                        .to_wire(),
                    );
                }
            }
        }
    }
    msgs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    #[test]
    fn crash_at_any_byte_offset_recovers_the_fsyncd_prefix(
        ops in proptest::collection::vec(arb_mut_op(), 1..25),
        cut_frac in 0u64..=1000,
        group_commit in any::<bool>(),
    ) {
        let messages = lower_mutations(&ops);
        prop_assume!(!messages.is_empty());
        // Group commit must uphold the identical recovery contract: a
        // serial caller leads every flush window itself, so each
        // handled message is fully appended *and* synced by return and
        // the per-message boundaries below stay exact in both modes.
        let options = DurableOptions {
            group_commit,
            ..DurableOptions::default()
        };

        // Drive a durable session, recording the active segment's
        // length after each (fsync'd) message — the record boundaries.
        let tmp = TempDir::new("crash").unwrap();
        let server =
            Server::open_durable_with(tmp.path(), 3, None, options.clone()).unwrap();
        let mut boundaries = Vec::with_capacity(messages.len());
        let active = {
            for m in &messages {
                let resp = server.handle(m);
                prop_assert!(
                    !matches!(ServerResponse::from_wire(&resp).unwrap(), ServerResponse::Error(_)),
                    "lowering produced an invalid mutation"
                );
                boundaries.push(
                    std::fs::metadata(server.durable_log().unwrap().active_segment_path())
                        .unwrap()
                        .len(),
                );
            }
            server.durable_log().unwrap().active_segment_path()
        };
        drop(server);

        // The kill: truncate the log at an arbitrary byte offset —
        // record boundaries, headers, payloads, checksums alike.
        let total = *boundaries.last().unwrap();
        let cut = total * cut_frac / 1000;
        let file = std::fs::File::options().write(true).open(&active).unwrap();
        file.set_len(cut).unwrap();
        drop(file);

        // Reference: replay only the fully-persisted message prefix.
        let survivors = boundaries.iter().filter(|&&b| b <= cut).count();
        let reference = Server::with_shards(3);
        for m in &messages[..survivors] {
            let _ = reference.handle(m);
        }

        // Recovery must neither panic nor partially apply the torn
        // record: every probe answers byte-identically.
        let recovered = Server::open_durable_with(tmp.path(), 3, None, options).unwrap();
        for probe in probe_messages_for(&["a", "b"]) {
            prop_assert_eq!(
                recovered.handle(&probe),
                reference.handle(&probe),
                "diverged after cut {} of {} ({} of {} records survive), ops {:?}",
                cut, total, survivors, messages.len(), &ops
            );
        }
    }
}

/// The on-disk image of a data directory, minus the advisory `LOCK`
/// (which carries no data and is re-created on open).
fn dir_image(dir: &std::path::Path) -> std::collections::BTreeMap<String, Vec<u8>> {
    let mut image = std::collections::BTreeMap::new();
    for entry in std::fs::read_dir(dir).unwrap().flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if name == "LOCK" {
            continue;
        }
        image.insert(name, std::fs::read(entry.path()).unwrap());
    }
    image
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    /// Kill the server *during compaction* — either mid-way through
    /// writing the new snapshot/active segments (manifest still names
    /// the old ones) or after the manifest swap but before the old
    /// segments are pruned — and recover. The manifest is the sole
    /// source of truth: recovery must restore exactly the acked
    /// prefix (which compaction never changes), sweep the orphaned
    /// segment files, and leave a fully serviceable directory. Group
    /// commit is on and the inverted index enabled, so the compacted
    /// image also carries dedup/index record kinds.
    #[test]
    fn crash_during_compaction_recovers_the_acked_prefix(
        ops in proptest::collection::vec(arb_mut_op(), 4..25),
        cut_frac in 0u64..=1000,
        after_manifest_swap in any::<bool>(),
    ) {
        let messages = lower_mutations(&ops);
        prop_assume!(!messages.is_empty());
        let options = DurableOptions {
            group_commit: true,
            ..DurableOptions::default()
        };

        // Drive the acked workload, then capture the directory on both
        // sides of a real compaction; the two images bracket every
        // state a mid-compaction kill can leave behind.
        let tmp = TempDir::new("compact-crash").unwrap();
        let server =
            Server::open_durable_with(tmp.path(), 3, None, options.clone()).unwrap();
        server.enable_index();
        for m in &messages {
            let resp = server.handle(m);
            prop_assert!(
                !matches!(ServerResponse::from_wire(&resp).unwrap(), ServerResponse::Error(_)),
                "lowering produced an invalid mutation"
            );
        }
        let pre = dir_image(tmp.path());
        server.compact().unwrap();
        let post = dir_image(tmp.path());
        drop(server);

        // Synthesize the kill state in a scratch directory.
        let scratch = TempDir::new("compact-crash-kill").unwrap();
        let mut debris = Vec::new();
        if after_manifest_swap {
            // Killed between the manifest rename and the prune: the new
            // world is fully installed, the old segments linger.
            for (name, bytes) in &post {
                std::fs::write(scratch.path().join(name), bytes).unwrap();
            }
            for (name, bytes) in &pre {
                if !post.contains_key(name) {
                    std::fs::write(scratch.path().join(name), bytes).unwrap();
                    debris.push(name.clone());
                }
            }
        } else {
            // Killed while writing the new segments: the manifest still
            // names the old world; the new snapshot/active segments are
            // partial files, and the manifest replacement may have made
            // it only as far as its tmp file.
            for (name, bytes) in &pre {
                std::fs::write(scratch.path().join(name), bytes).unwrap();
            }
            for (name, bytes) in &post {
                if !pre.contains_key(name) {
                    let cut = bytes.len() as u64 * cut_frac / 1000;
                    std::fs::write(scratch.path().join(name), &bytes[..cut as usize]).unwrap();
                    debris.push(name.clone());
                }
            }
            let manifest_cut = post["MANIFEST"].len() as u64 * cut_frac / 1000;
            std::fs::write(
                scratch.path().join("MANIFEST.tmp"),
                &post["MANIFEST"][..manifest_cut as usize],
            )
            .unwrap();
        }

        // Compaction is an identity on the logical store: the acked
        // prefix is every message.
        let reference = Server::with_shards(3);
        reference.enable_index();
        for m in &messages {
            let _ = reference.handle(m);
        }

        let recovered =
            Server::open_durable_with(scratch.path(), 3, None, options.clone()).unwrap();
        for probe in probe_messages_for(&["a", "b"]) {
            prop_assert_eq!(
                recovered.handle(&probe),
                reference.handle(&probe),
                "diverged (after_manifest_swap {}, cut {}), ops {:?}",
                after_manifest_swap, cut_frac, &ops
            );
        }
        // The orphaned segment files are gone — recovery swept them.
        for name in &debris {
            if name.starts_with("seg-") {
                prop_assert!(
                    !scratch.path().join(name).exists(),
                    "compaction debris {} survived recovery", name
                );
            }
        }

        // The recovered directory is fully serviceable: it takes new
        // mutations and they survive another restart.
        let resp = recovered.handle(
            &ClientMessage::CreateTable {
                name: "c".into(),
                table: table(2),
            }
            .to_wire(),
        );
        prop_assert!(
            !matches!(ServerResponse::from_wire(&resp).unwrap(), ServerResponse::Error(_))
        );
        let expect = recovered.handle(&ClientMessage::FetchAll { name: "c".into() }.to_wire());
        drop(recovered);
        let reopened = Server::open_durable_with(scratch.path(), 3, None, options).unwrap();
        prop_assert_eq!(
            reopened.handle(&ClientMessage::FetchAll { name: "c".into() }.to_wire()),
            expect,
            "post-recovery mutation lost on restart"
        );
    }
}

/// FetchAll + empty-conjunction query + a chunk page, per table name.
fn probe_messages_for(names: &[&str]) -> Vec<Vec<u8>> {
    let mut probes = Vec::new();
    for name in names {
        probes.push(
            ClientMessage::FetchAll {
                name: (*name).into(),
            }
            .to_wire(),
        );
        probes.push(
            ClientMessage::Query {
                name: (*name).into(),
                terms: vec![],
            }
            .to_wire(),
        );
        probes.push(
            ClientMessage::FetchChunk {
                name: (*name).into(),
                token: 0,
                max_bytes: 128,
            }
            .to_wire(),
        );
    }
    probes
}

#[test]
fn compacted_store_survives_restart_identically() {
    // Mutate, compact (snapshot segment), mutate more (tail log),
    // kill, recover: snapshot + tail must reproduce the exact store.
    let tmp = TempDir::new("compact-restart").unwrap();
    let reference = Server::with_shards(2);
    let durable = Server::open_durable(tmp.path(), 2).unwrap();

    let phase1 = [
        ClientMessage::CreateTable {
            name: "t1".into(),
            table: table(20),
        }
        .to_wire(),
        ClientMessage::DeleteDocs {
            name: "t1".into(),
            doc_ids: (0..7).collect(),
        }
        .to_wire(),
    ];
    for m in &phase1 {
        let _ = reference.handle(m);
        let _ = durable.handle(m);
    }
    durable.compact().unwrap();
    let phase2 = [
        ClientMessage::AppendBatch {
            name: "t1".into(),
            docs: vec![doc(20), doc(21)],
        }
        .to_wire(),
        ClientMessage::CreateTable {
            name: "t2".into(),
            table: table(3),
        }
        .to_wire(),
    ];
    for m in &phase2 {
        let _ = reference.handle(m);
        let _ = durable.handle(m);
    }
    drop(durable);

    let recovered = Server::open_durable(tmp.path(), 2).unwrap();
    for probe in probe_messages_for(&["t1", "t2"]) {
        assert_eq!(recovered.handle(&probe), reference.handle(&probe));
    }
}
