//! Security-regression tests: the experiment outcomes of E1/E3/E5 are
//! pinned as bands, so a refactor that silently reintroduces leakage
//! (or breaks an attack) fails CI. Trials are kept small; the full
//! tables come from the experiment binaries.

use dbph::baselines::{BucketConfig, BucketizationPh, DamianiPh, DeterministicPh};
use dbph::core::FinalSwpPh;
use dbph::crypto::cipher::{DeterministicCipher, EcbCipher, RandomizedCipher, StreamCipher};
use dbph::crypto::{DeterministicRng, SecretKey};
use dbph::games::attacks::active::CardinalityAdversary;
use dbph::games::attacks::salary::{
    bucketization_adversary, damiani_adversary, det_adversary, salary_schema, swp_adversary,
};
use dbph::games::indgame::EqualBlocksAdversary;
use dbph::games::{run_db_game, run_ind_game, AdversaryMode};
use dbph::relation::schema::hospital_schema;

const TRIALS: usize = 120;

#[test]
fn e1_band_bucketization_breaks() {
    let est = run_db_game(
        &|rng: &mut DeterministicRng| {
            let cfg = BucketConfig::uniform(&salary_schema(), 16, (0, 10_000)).unwrap();
            BucketizationPh::new(salary_schema(), cfg, &SecretKey::generate(rng)).unwrap()
        },
        &bucketization_adversary(),
        AdversaryMode::Passive,
        0,
        TRIALS,
        201,
    );
    assert!(est.advantage() > 0.9, "{est}");
}

#[test]
fn e1_band_damiani_breaks() {
    let est = run_db_game(
        &|rng: &mut DeterministicRng| {
            DamianiPh::new(salary_schema(), &SecretKey::generate(rng)).unwrap()
        },
        &damiani_adversary(),
        AdversaryMode::Passive,
        0,
        TRIALS,
        202,
    );
    assert!(est.advantage() > 0.9, "{est}");
}

#[test]
fn e1_band_deterministic_breaks() {
    let est = run_db_game(
        &|rng: &mut DeterministicRng| {
            DeterministicPh::new(salary_schema(), &SecretKey::generate(rng))
        },
        &det_adversary(),
        AdversaryMode::Passive,
        0,
        TRIALS,
        203,
    );
    assert!(est.advantage() > 0.9, "{est}");
}

#[test]
fn e1_band_swp_resists() {
    let est = run_db_game(
        &|rng: &mut DeterministicRng| {
            FinalSwpPh::new(salary_schema(), &SecretKey::generate(rng)).unwrap()
        },
        &swp_adversary(),
        AdversaryMode::Passive,
        0,
        400,
        204,
    );
    assert!(est.advantage().abs() < 0.15, "{est}");
}

#[test]
fn e3_band_theorem_2_1_at_q0_and_q1() {
    let factory = |rng: &mut DeterministicRng| {
        FinalSwpPh::new(hospital_schema(), &SecretKey::generate(rng)).unwrap()
    };
    let adversary = CardinalityAdversary::default();
    let q0 = run_db_game(&factory, &adversary, AdversaryMode::Active, 0, 400, 205);
    assert!(q0.advantage().abs() < 0.15, "q=0 must be blind: {q0}");
    let q1 = run_db_game(&factory, &adversary, AdversaryMode::Active, 1, TRIALS, 205);
    assert!(q1.advantage() > 0.9, "q=1 must break: {q1}");
}

#[test]
fn e5_band_ind_game() {
    let ecb = |rng: &mut DeterministicRng, m: &[u8]| {
        EcbCipher::new(&SecretKey::generate(rng), b"cell").encrypt_det(m)
    };
    let stream = |rng: &mut DeterministicRng, m: &[u8]| {
        let cipher = StreamCipher::new(&SecretKey::generate(rng), b"payload");
        let mut r = rng.child("enc");
        cipher.encrypt(&mut r, m)
    };
    let broken = run_ind_game(&EqualBlocksAdversary, ecb, TRIALS, 206);
    assert!(broken.advantage() > 0.9, "{broken}");
    let secure = run_ind_game(&EqualBlocksAdversary, stream, 400, 207);
    assert!(secure.advantage().abs() < 0.15, "{secure}");
}
