//! Shard-count and pool-size invariance: the sharded, worker-pooled
//! scan engine must be observationally identical to the seed's
//! single-threaded scan.
//!
//! Four obligations, matching `dbph::core::storage`'s contract:
//!
//! 1. **Byte-identical results.** For any workload and query, an
//!    N-shard server's serialized query response equals the 1-shard
//!    server's, which in turn equals the reference `execute_query`
//!    free function (the seed scan).
//! 2. **Equivalent transcripts.** The `Observer` event list for a
//!    whole session is equal across shard counts.
//! 3. **Batching leaks per-query, not per-batch.** A `QueryBatch`
//!    produces the same `Query` events (terms + matched ids) as the
//!    same queries sent one at a time; only the `batch` tag differs.
//! 4. **Pool-size invariance.** A `QueryBatch` fanned over a
//!    multi-worker pool produces byte-identical responses and an
//!    equal transcript to the 1-worker pool (which runs the identical
//!    task list inline, in order — the sequential engine), for fixed
//!    and randomized workloads, including empty batches and batches
//!    with duplicate terms (which share one prepared trapdoor through
//!    the per-batch memo).

use dbph::core::protocol::{ClientMessage, ServerResponse, WireTrapdoor};
use dbph::core::server::{execute_query, ServerEvent};
use dbph::core::wire::{WireDecode, WireEncode};
use dbph::core::{Client, DatabasePh, FinalSwpPh, Server};
use dbph::crypto::SecretKey;
use dbph::relation::{Query, Relation, Tuple, Value};
use dbph::workload::EmployeeGen;

use proptest::prelude::*;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn master() -> SecretKey {
    SecretKey::from_bytes([77u8; 32])
}

fn ph() -> FinalSwpPh {
    FinalSwpPh::new(EmployeeGen::schema(), &master()).unwrap()
}

fn sample_queries() -> Vec<Query> {
    vec![
        Query::select("dept", "dept-00"),
        Query::select("dept", "dept-03"),
        Query::select("salary", 5500i64),
        Query::select("name", "emp-0000042"),
        Query::select("name", "no-such-emp"),
    ]
}

/// Drives one full session against a server and returns every raw
/// response the server produced.
fn drive_session(server: &Server, relation: &Relation, queries: &[Query]) -> Vec<Vec<u8>> {
    let scheme = ph();
    let table = scheme.encrypt_table(relation).unwrap();
    let mut responses = Vec::new();
    let mut send = |msg: ClientMessage| {
        let bytes = server.handle(&msg.to_wire());
        responses.push(bytes);
    };
    send(ClientMessage::CreateTable {
        name: "Emp".into(),
        table,
    });
    for query in queries {
        let qct = scheme.encrypt_query(query).unwrap();
        send(ClientMessage::Query {
            name: "Emp".into(),
            terms: qct.terms.iter().map(WireTrapdoor::from_trapdoor).collect(),
        });
    }
    // Exercise the mutation paths too: append, delete, fetch.
    let extra = scheme
        .encrypt_table(
            &Relation::from_tuples(
                EmployeeGen::schema(),
                vec![Tuple::new(vec![
                    Value::str("emp-x"),
                    Value::str("dept-00"),
                    Value::int(7777),
                ])],
            )
            .unwrap(),
        )
        .unwrap();
    let (_, words) = extra.docs[0].clone();
    send(ClientMessage::Append {
        name: "Emp".into(),
        doc_id: relation.len() as u64,
        words,
    });
    send(ClientMessage::DeleteDocs {
        name: "Emp".into(),
        doc_ids: vec![1, 3, 3, 999_999],
    });
    send(ClientMessage::FetchAll { name: "Emp".into() });
    responses
}

#[test]
fn results_and_transcripts_identical_across_shard_counts() {
    let relation = EmployeeGen {
        rows: 300,
        ..EmployeeGen::default()
    }
    .generate(9);
    let queries = sample_queries();

    let baseline_server = Server::new();
    assert_eq!(baseline_server.shards(), 1);
    let baseline_responses = drive_session(&baseline_server, &relation, &queries);
    let baseline_events = baseline_server.observer().events();

    for shards in SHARD_COUNTS {
        let server = Server::with_shards(shards);
        let responses = drive_session(&server, &relation, &queries);
        assert_eq!(
            responses, baseline_responses,
            "raw wire responses diverged at {shards} shard(s)"
        );
        assert_eq!(
            server.observer().events(),
            baseline_events,
            "observer transcript diverged at {shards} shard(s)"
        );
    }
}

#[test]
fn sharded_scan_equals_reference_execute_query() {
    let relation = EmployeeGen {
        rows: 200,
        ..EmployeeGen::default()
    }
    .generate(4);
    let scheme = ph();
    let table = scheme.encrypt_table(&relation).unwrap();

    for query in sample_queries() {
        let qct = scheme.encrypt_query(&query).unwrap();
        let terms: Vec<WireTrapdoor> = qct.terms.iter().map(WireTrapdoor::from_trapdoor).collect();
        let reference = execute_query(&table, &terms);
        for shards in SHARD_COUNTS {
            let server = Server::with_shards(shards);
            let create = ClientMessage::CreateTable {
                name: "Emp".into(),
                table: table.clone(),
            };
            let _ = server.handle(&create.to_wire());
            let resp = server.handle(
                &ClientMessage::Query {
                    name: "Emp".into(),
                    terms: terms.clone(),
                }
                .to_wire(),
            );
            match ServerResponse::from_wire(&resp).unwrap() {
                ServerResponse::Table(result) => assert_eq!(
                    result, reference,
                    "{shards}-shard scan diverged from execute_query for {query}"
                ),
                other => panic!("unexpected response {other:?}"),
            }
        }
    }
}

#[test]
fn batched_queries_leak_exactly_like_single_queries() {
    let relation = EmployeeGen {
        rows: 120,
        ..EmployeeGen::default()
    }
    .generate(2);
    let queries = sample_queries();

    // One at a time…
    let singles = Server::new();
    let mut client = Client::new(ph(), singles.clone());
    client.outsource(&relation).unwrap();
    let single_results: Vec<Relation> = queries.iter().map(|q| client.select(q).unwrap()).collect();

    // …versus one batch on a sharded server.
    let batched = Server::with_shards(4);
    let mut batch_client = Client::new(ph(), batched.clone());
    batch_client.outsource(&relation).unwrap();
    let batch_results = batch_client.select_many(&queries).unwrap();

    for (s, b) in single_results.iter().zip(&batch_results) {
        assert!(
            s.same_multiset(b),
            "batched result differs from single-query result"
        );
    }

    // Per-query leakage (terms + matched ids) is identical; only the
    // batch tag differs.
    assert_eq!(singles.observer().queries(), batched.observer().queries());
    let tags: Vec<Option<(u64, usize)>> = batched
        .observer()
        .events()
        .iter()
        .filter_map(|e| match e {
            ServerEvent::Query { batch, .. } => Some(*batch),
            _ => None,
        })
        .collect();
    assert_eq!(
        tags,
        (0..queries.len()).map(|i| Some((0, i))).collect::<Vec<_>>(),
        "batch membership tags must record the message boundary"
    );
}

// --- pool-size invariance --------------------------------------------------

const POOL_SIZES: [usize; 4] = [1, 2, 4, 8];

/// Sends one `QueryBatch` session (create + batches) and returns the
/// raw responses. Batches deliberately include an empty batch, an
/// empty conjunction, and duplicate terms across queries.
fn drive_batch_session(server: &Server, relation: &Relation) -> Vec<Vec<u8>> {
    let scheme = ph();
    let table = scheme.encrypt_table(relation).unwrap();
    let encrypt = |q: &Query| -> Vec<WireTrapdoor> {
        let qct = scheme.encrypt_query(q).unwrap();
        qct.terms.iter().map(WireTrapdoor::from_trapdoor).collect()
    };
    let mut responses = Vec::new();
    let mut send = |msg: ClientMessage| responses.push(server.handle(&msg.to_wire()));
    send(ClientMessage::CreateTable {
        name: "Emp".into(),
        table,
    });
    // Batch 1: duplicate terms across (and within) queries, plus an
    // always-empty result and an empty conjunction.
    send(ClientMessage::QueryBatch {
        name: "Emp".into(),
        queries: vec![
            encrypt(&Query::select("dept", "dept-00")),
            encrypt(&Query::select("name", "no-such-emp")),
            encrypt(&Query::select("dept", "dept-00")), // duplicate
            vec![],                                     // empty conjunction
            encrypt(&Query::select("salary", 5500i64)),
            encrypt(&Query::select("dept", "dept-00")), // duplicate again
        ],
    });
    // Batch 2: empty batch.
    send(ClientMessage::QueryBatch {
        name: "Emp".into(),
        queries: vec![],
    });
    // Batch 3: single-query batch.
    send(ClientMessage::QueryBatch {
        name: "Emp".into(),
        queries: vec![encrypt(&Query::select("dept", "dept-03"))],
    });
    responses
}

#[test]
fn pooled_batches_match_sequential_engine_bytes_and_transcript() {
    // 600 rows clears the engine's inline threshold so multi-worker
    // pools genuinely run K×S tasks concurrently.
    let relation = EmployeeGen {
        rows: 600,
        ..EmployeeGen::default()
    }
    .generate(13);

    // The 1-worker pool runs the identical task list inline, in
    // submission order: that *is* the sequential execution path.
    let sequential = Server::with_pool(4, 1);
    let sequential_responses = drive_batch_session(&sequential, &relation);
    let sequential_events = sequential.observer().events();

    for workers in POOL_SIZES {
        for shards in [1, 4, 8] {
            let pooled = Server::with_pool(shards, workers);
            let responses = drive_batch_session(&pooled, &relation);
            assert_eq!(
                responses, sequential_responses,
                "wire responses diverged at {shards} shard(s) × {workers} worker(s)"
            );
            assert_eq!(
                pooled.observer().events(),
                sequential_events,
                "transcript diverged at {shards} shard(s) × {workers} worker(s)"
            );
        }
    }
}

#[test]
fn batch_results_match_reference_execute_query_per_query() {
    // Every query of a pooled batch must return exactly what the seed
    // scan returns for that query alone — duplicates included.
    use dbph::relation::query::ExactSelect;
    let relation = EmployeeGen {
        rows: 250,
        ..EmployeeGen::default()
    }
    .generate(5);
    let scheme = ph();
    let table = scheme.encrypt_table(&relation).unwrap();
    let queries = [
        Query::select("dept", "dept-01"),
        Query::select("dept", "dept-01"),
        // Conjunction whose first term is shared with the queries
        // above and whose second term is unique to it: exercises the
        // memoized-set path and the short-circuit filter path inside
        // one query.
        Query::conjunction(vec![
            ExactSelect::new("dept", "dept-01"),
            ExactSelect::new("salary", 5500i64),
        ])
        .unwrap(),
        // Conjunction of two unique terms: pure short-circuit path.
        Query::conjunction(vec![
            ExactSelect::new("dept", "dept-02"),
            ExactSelect::new("salary", 4000i64),
        ])
        .unwrap(),
        Query::select("salary", 9900i64),
        Query::select("name", "emp-0000007"),
    ];
    let encrypted: Vec<Vec<WireTrapdoor>> = queries
        .iter()
        .map(|q| {
            let qct = scheme.encrypt_query(q).unwrap();
            qct.terms.iter().map(WireTrapdoor::from_trapdoor).collect()
        })
        .collect();

    for workers in POOL_SIZES {
        let server = Server::with_pool(4, workers);
        let _ = server.handle(
            &ClientMessage::CreateTable {
                name: "Emp".into(),
                table: table.clone(),
            }
            .to_wire(),
        );
        let resp = server.handle(
            &ClientMessage::QueryBatch {
                name: "Emp".into(),
                queries: encrypted.clone(),
            }
            .to_wire(),
        );
        match ServerResponse::from_wire(&resp).unwrap() {
            ServerResponse::Tables(results) => {
                assert_eq!(results.len(), queries.len());
                for (terms, result) in encrypted.iter().zip(&results) {
                    assert_eq!(
                        result,
                        &execute_query(&table, terms),
                        "pooled batch diverged from seed scan at {workers} worker(s)"
                    );
                }
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
}

// --- randomized invariance -------------------------------------------------

fn arb_relation() -> impl Strategy<Value = Relation> {
    proptest::collection::vec(("[a-z]{0,12}", 0i64..50, any::<bool>()), 0..40).prop_map(|rows| {
        let schema = dbph::relation::Schema::new(
            "Rnd",
            vec![
                dbph::relation::Attribute::new("s", dbph::relation::AttrType::Str { max_len: 12 }),
                dbph::relation::Attribute::new("i", dbph::relation::AttrType::Int),
                dbph::relation::Attribute::new("b", dbph::relation::AttrType::Bool),
            ],
        )
        .unwrap();
        Relation::from_tuples(
            schema,
            rows.into_iter()
                .map(|(s, i, b)| Tuple::new(vec![Value::Str(s), Value::Int(i), Value::Bool(b)]))
                .collect(),
        )
        .unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn random_query_batches_are_pool_invariant(
        relation in arb_relation(),
        // Indices into a tiny probe pool: duplicates are frequent by
        // construction, exercising the per-batch trapdoor memo.
        picks in proptest::collection::vec(0usize..4, 0..7),
        key in any::<[u8; 32]>(),
    ) {
        let scheme =
            FinalSwpPh::new(relation.schema().clone(), &SecretKey::from_bytes(key)).unwrap();
        let table = scheme.encrypt_table(&relation).unwrap();
        let probes = [
            Query::select("s", "zz"),
            Query::select("i", 7i64),
            Query::select("b", true),
            Query::select("b", false),
        ];
        let encrypted: Vec<Vec<WireTrapdoor>> = picks
            .iter()
            .map(|&p| {
                let qct = scheme.encrypt_query(&probes[p]).unwrap();
                qct.terms.iter().map(WireTrapdoor::from_trapdoor).collect()
            })
            .collect();

        let mut reference: Option<(Vec<Vec<u8>>, Vec<ServerEvent>)> = None;
        for workers in [1usize, 3, 8] {
            let server = Server::with_pool(3, workers);
            let responses = vec![
                server.handle(
                    &ClientMessage::CreateTable { name: "Rnd".into(), table: table.clone() }
                        .to_wire(),
                ),
                server.handle(
                    &ClientMessage::QueryBatch { name: "Rnd".into(), queries: encrypted.clone() }
                        .to_wire(),
                ),
            ];
            // Per-query results must equal the seed scan.
            match ServerResponse::from_wire(responses.last().unwrap()).unwrap() {
                ServerResponse::Tables(results) => {
                    prop_assert_eq!(results.len(), encrypted.len());
                    for (terms, result) in encrypted.iter().zip(&results) {
                        prop_assert_eq!(
                            result,
                            &execute_query(&table, terms),
                            "pooled batch diverged from seed scan at {} worker(s)",
                            workers
                        );
                    }
                }
                other => return Err(TestCaseError::fail(format!("unexpected {other:?}"))),
            }
            let events = server.observer().events();
            match &reference {
                None => reference = Some((responses, events)),
                Some((ref_responses, ref_events)) => {
                    prop_assert_eq!(&responses, ref_responses,
                        "wire responses diverged at {} worker(s)", workers);
                    prop_assert_eq!(&events, ref_events,
                        "transcript diverged at {} worker(s)", workers);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn random_relations_and_queries_are_shard_invariant(
        relation in arb_relation(),
        probe_s in "[a-z]{0,12}",
        probe_i in 0i64..50,
        key in any::<[u8; 32]>(),
    ) {
        let scheme =
            FinalSwpPh::new(relation.schema().clone(), &SecretKey::from_bytes(key)).unwrap();
        let table = scheme.encrypt_table(&relation).unwrap();
        for query in [
            Query::select("s", probe_s.clone()),
            Query::select("i", probe_i),
            Query::select("b", true),
        ] {
            let qct = scheme.encrypt_query(&query).unwrap();
            let terms: Vec<WireTrapdoor> =
                qct.terms.iter().map(WireTrapdoor::from_trapdoor).collect();
            let reference = execute_query(&table, &terms);
            for shards in [1usize, 3, 8] {
                let server = Server::with_shards(shards);
                let _ = server.handle(
                    &ClientMessage::CreateTable { name: "Rnd".into(), table: table.clone() }
                        .to_wire(),
                );
                let resp = server.handle(
                    &ClientMessage::Query { name: "Rnd".into(), terms: terms.clone() }.to_wire(),
                );
                match ServerResponse::from_wire(&resp).unwrap() {
                    ServerResponse::Table(result) => {
                        prop_assert_eq!(&result, &reference,
                            "{} shards diverged for {}", shards, &query);
                    }
                    other => return Err(TestCaseError::fail(format!("unexpected {other:?}"))),
                }
            }
        }
    }
}
