//! Shard-count invariance: the sharded parallel scan engine must be
//! observationally identical to the seed's single-threaded scan.
//!
//! Three obligations, matching `dbph::core::storage`'s contract:
//!
//! 1. **Byte-identical results.** For any workload and query, an
//!    N-shard server's serialized query response equals the 1-shard
//!    server's, which in turn equals the reference `execute_query`
//!    free function (the seed scan).
//! 2. **Equivalent transcripts.** The `Observer` event list for a
//!    whole session is equal across shard counts.
//! 3. **Batching leaks per-query, not per-batch.** A `QueryBatch`
//!    produces the same `Query` events (terms + matched ids) as the
//!    same queries sent one at a time; only the `batch` tag differs.

use dbph::core::protocol::{ClientMessage, ServerResponse, WireTrapdoor};
use dbph::core::server::{execute_query, ServerEvent};
use dbph::core::wire::{WireDecode, WireEncode};
use dbph::core::{Client, DatabasePh, FinalSwpPh, Server};
use dbph::crypto::SecretKey;
use dbph::relation::{Query, Relation, Tuple, Value};
use dbph::workload::EmployeeGen;

use proptest::prelude::*;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn master() -> SecretKey {
    SecretKey::from_bytes([77u8; 32])
}

fn ph() -> FinalSwpPh {
    FinalSwpPh::new(EmployeeGen::schema(), &master()).unwrap()
}

fn sample_queries() -> Vec<Query> {
    vec![
        Query::select("dept", "dept-00"),
        Query::select("dept", "dept-03"),
        Query::select("salary", 5500i64),
        Query::select("name", "emp-0000042"),
        Query::select("name", "no-such-emp"),
    ]
}

/// Drives one full session against a server and returns every raw
/// response the server produced.
fn drive_session(server: &Server, relation: &Relation, queries: &[Query]) -> Vec<Vec<u8>> {
    let scheme = ph();
    let table = scheme.encrypt_table(relation).unwrap();
    let mut responses = Vec::new();
    let mut send = |msg: ClientMessage| {
        let bytes = server.handle(&msg.to_wire());
        responses.push(bytes);
    };
    send(ClientMessage::CreateTable {
        name: "Emp".into(),
        table,
    });
    for query in queries {
        let qct = scheme.encrypt_query(query).unwrap();
        send(ClientMessage::Query {
            name: "Emp".into(),
            terms: qct.terms.iter().map(WireTrapdoor::from_trapdoor).collect(),
        });
    }
    // Exercise the mutation paths too: append, delete, fetch.
    let extra = scheme
        .encrypt_table(
            &Relation::from_tuples(
                EmployeeGen::schema(),
                vec![Tuple::new(vec![
                    Value::str("emp-x"),
                    Value::str("dept-00"),
                    Value::int(7777),
                ])],
            )
            .unwrap(),
        )
        .unwrap();
    let (_, words) = extra.docs[0].clone();
    send(ClientMessage::Append {
        name: "Emp".into(),
        doc_id: relation.len() as u64,
        words,
    });
    send(ClientMessage::DeleteDocs {
        name: "Emp".into(),
        doc_ids: vec![1, 3, 3, 999_999],
    });
    send(ClientMessage::FetchAll { name: "Emp".into() });
    responses
}

#[test]
fn results_and_transcripts_identical_across_shard_counts() {
    let relation = EmployeeGen {
        rows: 300,
        ..EmployeeGen::default()
    }
    .generate(9);
    let queries = sample_queries();

    let baseline_server = Server::new();
    assert_eq!(baseline_server.shards(), 1);
    let baseline_responses = drive_session(&baseline_server, &relation, &queries);
    let baseline_events = baseline_server.observer().events();

    for shards in SHARD_COUNTS {
        let server = Server::with_shards(shards);
        let responses = drive_session(&server, &relation, &queries);
        assert_eq!(
            responses, baseline_responses,
            "raw wire responses diverged at {shards} shard(s)"
        );
        assert_eq!(
            server.observer().events(),
            baseline_events,
            "observer transcript diverged at {shards} shard(s)"
        );
    }
}

#[test]
fn sharded_scan_equals_reference_execute_query() {
    let relation = EmployeeGen {
        rows: 200,
        ..EmployeeGen::default()
    }
    .generate(4);
    let scheme = ph();
    let table = scheme.encrypt_table(&relation).unwrap();

    for query in sample_queries() {
        let qct = scheme.encrypt_query(&query).unwrap();
        let terms: Vec<WireTrapdoor> = qct.terms.iter().map(WireTrapdoor::from_trapdoor).collect();
        let reference = execute_query(&table, &terms);
        for shards in SHARD_COUNTS {
            let server = Server::with_shards(shards);
            let create = ClientMessage::CreateTable {
                name: "Emp".into(),
                table: table.clone(),
            };
            let _ = server.handle(&create.to_wire());
            let resp = server.handle(
                &ClientMessage::Query {
                    name: "Emp".into(),
                    terms: terms.clone(),
                }
                .to_wire(),
            );
            match ServerResponse::from_wire(&resp).unwrap() {
                ServerResponse::Table(result) => assert_eq!(
                    result, reference,
                    "{shards}-shard scan diverged from execute_query for {query}"
                ),
                other => panic!("unexpected response {other:?}"),
            }
        }
    }
}

#[test]
fn batched_queries_leak_exactly_like_single_queries() {
    let relation = EmployeeGen {
        rows: 120,
        ..EmployeeGen::default()
    }
    .generate(2);
    let queries = sample_queries();

    // One at a time…
    let singles = Server::new();
    let mut client = Client::new(ph(), singles.clone());
    client.outsource(&relation).unwrap();
    let single_results: Vec<Relation> = queries.iter().map(|q| client.select(q).unwrap()).collect();

    // …versus one batch on a sharded server.
    let batched = Server::with_shards(4);
    let mut batch_client = Client::new(ph(), batched.clone());
    batch_client.outsource(&relation).unwrap();
    let batch_results = batch_client.select_many(&queries).unwrap();

    for (s, b) in single_results.iter().zip(&batch_results) {
        assert!(
            s.same_multiset(b),
            "batched result differs from single-query result"
        );
    }

    // Per-query leakage (terms + matched ids) is identical; only the
    // batch tag differs.
    assert_eq!(singles.observer().queries(), batched.observer().queries());
    let tags: Vec<Option<(u64, usize)>> = batched
        .observer()
        .events()
        .iter()
        .filter_map(|e| match e {
            ServerEvent::Query { batch, .. } => Some(*batch),
            _ => None,
        })
        .collect();
    assert_eq!(
        tags,
        (0..queries.len()).map(|i| Some((0, i))).collect::<Vec<_>>(),
        "batch membership tags must record the message boundary"
    );
}

// --- randomized invariance -------------------------------------------------

fn arb_relation() -> impl Strategy<Value = Relation> {
    proptest::collection::vec(("[a-z]{0,12}", 0i64..50, any::<bool>()), 0..40).prop_map(|rows| {
        let schema = dbph::relation::Schema::new(
            "Rnd",
            vec![
                dbph::relation::Attribute::new("s", dbph::relation::AttrType::Str { max_len: 12 }),
                dbph::relation::Attribute::new("i", dbph::relation::AttrType::Int),
                dbph::relation::Attribute::new("b", dbph::relation::AttrType::Bool),
            ],
        )
        .unwrap();
        Relation::from_tuples(
            schema,
            rows.into_iter()
                .map(|(s, i, b)| Tuple::new(vec![Value::Str(s), Value::Int(i), Value::Bool(b)]))
                .collect(),
        )
        .unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn random_relations_and_queries_are_shard_invariant(
        relation in arb_relation(),
        probe_s in "[a-z]{0,12}",
        probe_i in 0i64..50,
        key in any::<[u8; 32]>(),
    ) {
        let scheme =
            FinalSwpPh::new(relation.schema().clone(), &SecretKey::from_bytes(key)).unwrap();
        let table = scheme.encrypt_table(&relation).unwrap();
        for query in [
            Query::select("s", probe_s.clone()),
            Query::select("i", probe_i),
            Query::select("b", true),
        ] {
            let qct = scheme.encrypt_query(&query).unwrap();
            let terms: Vec<WireTrapdoor> =
                qct.terms.iter().map(WireTrapdoor::from_trapdoor).collect();
            let reference = execute_query(&table, &terms);
            for shards in [1usize, 3, 8] {
                let server = Server::with_shards(shards);
                let _ = server.handle(
                    &ClientMessage::CreateTable { name: "Rnd".into(), table: table.clone() }
                        .to_wire(),
                );
                let resp = server.handle(
                    &ClientMessage::Query { name: "Rnd".into(), terms: terms.clone() }.to_wire(),
                );
                match ServerResponse::from_wire(&resp).unwrap() {
                    ServerResponse::Table(result) => {
                        prop_assert_eq!(&result, &reference,
                            "{} shards diverged for {}", shards, &query);
                    }
                    other => return Err(TestCaseError::fail(format!("unexpected {other:?}"))),
                }
            }
        }
    }
}
