//! Property-based tests (proptest) over the core invariants.

use proptest::prelude::*;

use dbph::core::wire::{WireDecode, WireEncode};
use dbph::core::{DatabasePh, FinalSwpPh, VarlenPh, WordCodec};
use dbph::crypto::cipher::{
    DeterministicCipher, RandomizedCipher, SealedCipher, StreamCipher, WideBlockPrp,
};
use dbph::crypto::{DeterministicRng, SecretKey};
use dbph::relation::{AttrType, Attribute, Query, Relation, Schema, Tuple, Value};
use dbph::swp::{matches, FinalScheme, Location, SearchableScheme, SwpParams, Word};

fn key_from(bytes: [u8; 32]) -> SecretKey {
    SecretKey::from_bytes(bytes)
}

// --- crypto layer ----------------------------------------------------------

proptest! {
    #[test]
    fn stream_cipher_roundtrips(data in proptest::collection::vec(any::<u8>(), 0..512),
                                key in any::<[u8; 32]>(), seed in any::<u64>()) {
        let cipher = StreamCipher::new(&key_from(key), b"prop");
        let mut rng = DeterministicRng::from_seed(seed);
        let ct = cipher.encrypt(&mut rng, &data);
        prop_assert_eq!(cipher.decrypt(&ct).unwrap(), data);
    }

    #[test]
    fn sealed_cipher_roundtrips_and_rejects_flips(
        data in proptest::collection::vec(any::<u8>(), 0..256),
        key in any::<[u8; 32]>(), seed in any::<u64>(), flip in any::<(usize, u8)>()) {
        let cipher = SealedCipher::new(&key_from(key), b"prop");
        let mut rng = DeterministicRng::from_seed(seed);
        let ct = cipher.encrypt(&mut rng, &data);
        prop_assert_eq!(cipher.decrypt(&ct).unwrap(), data.clone());

        let (pos, bit) = flip;
        let mut bad = ct.clone();
        let i = pos % bad.len();
        let mask = 1u8 << (bit % 8);
        bad[i] ^= mask;
        prop_assert!(cipher.decrypt(&bad).is_err(), "flip at {} mask {:02x}", i, mask);
    }

    #[test]
    fn wide_prp_is_a_permutation(data in proptest::collection::vec(any::<u8>(), 2..128),
                                 key in any::<[u8; 32]>()) {
        let prp = WideBlockPrp::new(&key_from(key), b"prop");
        let ct = prp.encrypt_det(&data);
        prop_assert_eq!(ct.len(), data.len());
        prop_assert_eq!(prp.decrypt_det(&ct).unwrap(), data);
    }

    #[test]
    fn kdf_labels_never_collide(label_a in "[a-z]{1,16}", label_b in "[a-z]{1,16}",
                                master in any::<[u8; 32]>()) {
        prop_assume!(label_a != label_b);
        let k = key_from(master);
        let ka = k.derive(label_a.as_bytes());
        let kb = k.derive(label_b.as_bytes());
        prop_assert_ne!(ka.as_bytes(), kb.as_bytes());
    }
}

// --- SWP layer -------------------------------------------------------------

proptest! {
    #[test]
    fn swp_never_has_false_negatives(word_bytes in proptest::collection::vec(any::<u8>(), 13),
                                     doc in any::<u64>(), idx in any::<u32>(),
                                     key in any::<[u8; 32]>()) {
        let params = SwpParams::new(13, 4, 32).unwrap();
        let scheme = FinalScheme::new(params, &key_from(key));
        let w = Word::from_bytes_unchecked(word_bytes);
        let c = scheme.encrypt_word(Location::new(doc, idx), &w).unwrap();
        let td = scheme.trapdoor(&w).unwrap();
        prop_assert!(matches(&params, &td, &c), "a stored word must always match its trapdoor");
    }

    #[test]
    fn swp_decrypts_what_it_encrypts(word_bytes in proptest::collection::vec(any::<u8>(), 13),
                                     doc in any::<u64>(), idx in any::<u32>(),
                                     key in any::<[u8; 32]>()) {
        let params = SwpParams::new(13, 4, 32).unwrap();
        let scheme = FinalScheme::new(params, &key_from(key));
        let w = Word::from_bytes_unchecked(word_bytes);
        let loc = Location::new(doc, idx);
        let c = scheme.encrypt_word(loc, &w).unwrap();
        prop_assert_eq!(scheme.decrypt_word(loc, &c).unwrap(), w);
    }
}

// --- relation + encoding layer ---------------------------------------------

/// Strategy: a value fitting `STRING(24)`.
fn arb_str_value() -> impl Strategy<Value = Value> {
    "[a-zA-Z0-9#_ ]{0,24}".prop_map(Value::Str)
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        arb_str_value(),
        any::<i64>().prop_map(Value::Int),
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn test_schema() -> Schema {
    Schema::new(
        "Prop",
        vec![
            Attribute::new("s", AttrType::Str { max_len: 24 }),
            Attribute::new("i", AttrType::Int),
            Attribute::new("b", AttrType::Bool),
        ],
    )
    .unwrap()
}

fn arb_tuple() -> impl Strategy<Value = Tuple> {
    (arb_str_value(), any::<i64>(), any::<bool>())
        .prop_map(|(s, i, b)| Tuple::new(vec![s, Value::Int(i), Value::Bool(b)]))
}

proptest! {
    #[test]
    fn value_encoding_roundtrips(v in arb_value()) {
        let ty = v.natural_type();
        let enc = v.encode();
        prop_assert_eq!(Value::decode(&ty, &enc).unwrap(), v);
    }

    #[test]
    fn word_codec_roundtrips_tuples(t in arb_tuple()) {
        let codec = WordCodec::new(test_schema());
        let words = codec.encode_tuple(&t).unwrap();
        prop_assert_eq!(codec.decode_tuple(&words).unwrap(), t);
    }

    #[test]
    fn word_codec_is_injective(a in arb_tuple(), b in arb_tuple()) {
        prop_assume!(a != b);
        let codec = WordCodec::new(test_schema());
        prop_assert_ne!(codec.encode_tuple(&a).unwrap(), codec.encode_tuple(&b).unwrap());
    }
}

// --- homomorphism law over random relations --------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn homomorphism_law_over_random_relations(
        tuples in proptest::collection::vec(arb_tuple(), 0..25),
        probe in arb_tuple(),
        key in any::<[u8; 32]>(),
    ) {
        let relation = Relation::from_tuples(test_schema(), tuples).unwrap();
        // Query for a value that may or may not be present.
        let queries = [
            Query::select("s", probe.get(0).unwrap().clone()),
            Query::select("i", probe.get(1).unwrap().clone()),
            Query::select("b", probe.get(2).unwrap().clone()),
        ];
        let swp = FinalSwpPh::new(test_schema(), &key_from(key)).unwrap();
        let varlen = VarlenPh::new(test_schema(), &key_from(key)).unwrap();
        for q in &queries {
            dbph::core::ph::check_homomorphism_law(&swp, &relation, q).unwrap();
            dbph::core::ph::check_homomorphism_law(&varlen, &relation, q).unwrap();
        }
    }
}

// --- wire format -----------------------------------------------------------

proptest! {
    #[test]
    fn wire_roundtrips_strings(s in ".*") {
        let bytes = s.to_wire();
        prop_assert_eq!(String::from_wire(&bytes).unwrap(), s);
    }

    #[test]
    fn wire_roundtrips_nested_vectors(
        v in proptest::collection::vec(
            (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..32)), 0..16)) {
        let bytes = v.to_wire();
        prop_assert_eq!(Vec::<(u64, Vec<u8>)>::from_wire(&bytes).unwrap(), v);
    }

    #[test]
    fn wire_never_panics_on_random_input(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Decoding arbitrary bytes must return Err, never panic.
        let _ = dbph::core::swp_ph::EncryptedTable::from_wire(&bytes);
        let _ = dbph::core::protocol::ClientMessage::from_wire(&bytes);
        let _ = dbph::core::protocol::ServerResponse::from_wire(&bytes);
        let _ = String::from_wire(&bytes);
        let _ = Vec::<u64>::from_wire(&bytes);
    }

    #[test]
    fn encrypted_tables_survive_the_wire(
        tuples in proptest::collection::vec(arb_tuple(), 0..10),
        key in any::<[u8; 32]>(),
    ) {
        let relation = Relation::from_tuples(test_schema(), tuples).unwrap();
        let ph = FinalSwpPh::new(test_schema(), &key_from(key)).unwrap();
        let ct = ph.encrypt_table(&relation).unwrap();
        let restored = dbph::core::swp_ph::EncryptedTable::from_wire(&ct.to_wire()).unwrap();
        prop_assert_eq!(&restored, &ct);
        // And the restored ciphertext still decrypts.
        prop_assert!(ph.decrypt_table(&restored).unwrap().same_multiset(&relation));
    }
}

// --- batched protocol messages ---------------------------------------------

fn arb_trapdoor() -> impl Strategy<Value = dbph::core::protocol::WireTrapdoor> {
    (
        proptest::collection::vec(any::<u8>(), 0..24),
        proptest::collection::vec(any::<u8>(), 0..40),
    )
        .prop_map(|(target, check_key)| dbph::core::protocol::WireTrapdoor { target, check_key })
}

fn arb_cipher_words() -> impl Strategy<Value = Vec<dbph::swp::CipherWord>> {
    proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..24).prop_map(dbph::swp::CipherWord),
        0..6,
    )
}

proptest! {
    #[test]
    fn query_batch_messages_roundtrip(
        name in "[a-zA-Z0-9_]{1,16}",
        queries in proptest::collection::vec(
            proptest::collection::vec(arb_trapdoor(), 0..5), 0..8),
    ) {
        let msg = dbph::core::protocol::ClientMessage::QueryBatch { name, queries };
        let bytes = msg.to_wire();
        prop_assert_eq!(
            dbph::core::protocol::ClientMessage::from_wire(&bytes).unwrap(), msg);
    }

    #[test]
    fn append_batch_messages_roundtrip(
        name in "[a-zA-Z0-9_]{1,16}",
        docs in proptest::collection::vec((any::<u64>(), arb_cipher_words()), 0..8),
    ) {
        let msg = dbph::core::protocol::ClientMessage::AppendBatch { name, docs };
        let bytes = msg.to_wire();
        prop_assert_eq!(
            dbph::core::protocol::ClientMessage::from_wire(&bytes).unwrap(), msg);
    }

    #[test]
    fn tables_responses_roundtrip(
        tuples in proptest::collection::vec(arb_tuple(), 0..6),
        splits in any::<u8>(),
        key in any::<[u8; 32]>(),
    ) {
        // A Tables response carrying several (possibly empty) results.
        let relation = Relation::from_tuples(test_schema(), tuples).unwrap();
        let ph = FinalSwpPh::new(test_schema(), &key_from(key)).unwrap();
        let ct = ph.encrypt_table(&relation).unwrap();
        let n = usize::from(splits % 4);
        let response =
            dbph::core::protocol::ServerResponse::Tables(vec![ct; n]);
        let bytes = response.to_wire();
        prop_assert_eq!(
            dbph::core::protocol::ServerResponse::from_wire(&bytes).unwrap(), response);
    }

    #[test]
    fn batch_decoding_never_panics_on_random_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
        tag in 7u8..9,
    ) {
        // Frame random payloads under the batch tags specifically.
        let mut framed = vec![tag];
        framed.extend_from_slice(&bytes);
        let _ = dbph::core::protocol::ClientMessage::from_wire(&framed);
    }
}

// --- frame codec -----------------------------------------------------------

/// A reader that delivers at most `chunk` bytes per call — the
/// adversarial-chunking stand-in for a TCP stack free to fragment
/// frames however it likes.
struct TrickleReader<R> {
    inner: R,
    chunk: usize,
}

impl<R: std::io::Read> std::io::Read for TrickleReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = buf.len().min(self.chunk.max(1));
        self.inner.read(&mut buf[..n])
    }
}

/// A writer that accepts at most `chunk` bytes per call.
struct TrickleWriter {
    inner: Vec<u8>,
    chunk: usize,
}

impl std::io::Write for TrickleWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = buf.len().min(self.chunk.max(1));
        self.inner.extend_from_slice(&buf[..n]);
        Ok(n)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

proptest! {
    #[test]
    fn frames_roundtrip_under_adversarial_chunking(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..200), 0..6),
        write_chunk in 1usize..4,
        read_chunk in 1usize..4,
    ) {
        use dbph::core::codec;
        // Write every frame through a writer that takes 1–3 bytes at a
        // time, read them back through a reader that gives 1–3 bytes
        // at a time: the codec's short-transfer loops must reassemble
        // the exact payload sequence, then report a clean EOF.
        let mut sink = TrickleWriter { inner: Vec::new(), chunk: write_chunk };
        for p in &payloads {
            codec::write_frame(&mut sink, p).unwrap();
        }
        let mut source = TrickleReader {
            inner: std::io::Cursor::new(sink.inner),
            chunk: read_chunk,
        };
        for p in &payloads {
            let frame = codec::read_frame(&mut source).unwrap();
            prop_assert_eq!(frame.as_deref(), Some(p.as_slice()));
        }
        prop_assert!(codec::read_frame(&mut source).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_frames_rejected_in_both_directions(
        cap in 0usize..64,
        excess in 1usize..16,
    ) {
        use dbph::core::codec;
        use dbph::core::PhError;
        let payload = vec![7u8; cap + excess];
        // The writer refuses before anything hits the wire…
        let mut sink = Vec::new();
        prop_assert!(matches!(
            codec::write_frame_capped(&mut sink, &payload, cap),
            Err(PhError::Transport(_))
        ));
        prop_assert!(sink.is_empty());
        // …and a reader facing the announcement a compliant writer
        // would never make refuses before allocating the payload.
        let mut bytes = ((cap + excess) as u32).to_le_bytes().to_vec();
        bytes.extend_from_slice(&payload);
        let mut r = std::io::Cursor::new(bytes);
        prop_assert!(matches!(
            codec::read_frame_capped(&mut r, cap),
            Err(PhError::Transport(_))
        ));
    }

    #[test]
    fn truncated_frames_error_and_never_panic(
        payload in proptest::collection::vec(any::<u8>(), 0..80),
    ) {
        use dbph::core::codec;
        use dbph::core::PhError;
        let mut bytes = Vec::new();
        codec::write_frame(&mut bytes, &payload).unwrap();
        // Every proper prefix of a frame is either a clean EOF (cut at
        // zero — the peer never started) or a transport error (cut
        // mid-frame) — never a success, never a panic, even through a
        // 1-byte trickle.
        for cut in 0..bytes.len() {
            let mut r = TrickleReader {
                inner: std::io::Cursor::new(bytes[..cut].to_vec()),
                chunk: 1,
            };
            match codec::read_frame(&mut r) {
                Ok(None) => prop_assert_eq!(cut, 0, "mid-frame cut read as clean EOF"),
                Ok(Some(_)) => prop_assert!(false, "truncated frame decoded at cut {}", cut),
                Err(PhError::Transport(_)) => prop_assert!(cut > 0),
                Err(other) => prop_assert!(false, "unexpected error {:?}", other),
            }
        }
    }

    #[test]
    fn frame_reader_never_panics_on_random_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        use dbph::core::codec;
        // Arbitrary garbage: any outcome but a panic is acceptable,
        // and a success must faithfully carry the announced payload.
        let mut r = std::io::Cursor::new(bytes.clone());
        if let Ok(Some(frame)) = codec::read_frame(&mut r) {
            prop_assert_eq!(frame.len() + 4, bytes.len().min(frame.len() + 4));
            prop_assert_eq!(&frame[..], &bytes[4..4 + frame.len()]);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn chunk_streams_frame_under_caps_the_monolithic_fetch_exceeds(
        max_bytes in 256u64..4096,
    ) {
        // Why chunking is load-bearing, not cosmetic: a table whose
        // FetchAll response outgrows a frame cap cannot cross the
        // capped codec *at all* — while the same table's FetchChunk
        // stream frames every response under that cap, for any chunk
        // budget, and carries the identical documents.
        use dbph::core::codec;
        use dbph::core::protocol::{ClientMessage, ServerResponse};
        use dbph::core::Server;

        const CAP: usize = 16 << 10;
        let table = dbph::core::EncryptedTable {
            params: dbph::swp::SwpParams::new(1500, 4, 32).unwrap(),
            docs: (0..40u64)
                .map(|i| (i, vec![dbph::swp::CipherWord(vec![i as u8; 1500])]))
                .collect(),
            next_doc_id: 40,
        };
        let server = Server::new();
        let _ = server.handle(
            &ClientMessage::CreateTable { name: "t".into(), table: table.clone() }.to_wire(),
        );

        // Monolithic: refused by the capped frame writer outright.
        let monolithic =
            server.handle(&ClientMessage::FetchAll { name: "t".into() }.to_wire());
        let mut sink = Vec::new();
        prop_assert!(codec::write_frame_capped(&mut sink, &monolithic, CAP).is_err());

        // Chunked: every page frames under the cap, stream reassembles
        // the exact documents.
        let mut token = 0u64;
        let mut docs = Vec::new();
        loop {
            let bytes = server.handle(
                &ClientMessage::FetchChunk { name: "t".into(), token, max_bytes }.to_wire(),
            );
            let mut sink = Vec::new();
            prop_assert!(
                codec::write_frame_capped(&mut sink, &bytes, CAP).is_ok(),
                "chunk at token {} burst the cap under budget {}", token, max_bytes
            );
            match ServerResponse::from_wire(&bytes).unwrap() {
                ServerResponse::TableChunk { table, next } => {
                    docs.extend(table.docs);
                    match next {
                        Some(n) => { prop_assert!(n > token); token = n; }
                        None => break,
                    }
                }
                other => { prop_assert!(false, "unexpected {:?}", other); }
            }
        }
        prop_assert_eq!(docs, table.docs);
    }
}

// --- SQL -------------------------------------------------------------------

proptest! {
    #[test]
    fn sql_parser_never_panics(input in ".{0,200}") {
        let _ = dbph::relation::sql::parse_statement(&input);
    }

    #[test]
    fn sql_string_literals_roundtrip(s in "[a-zA-Z0-9' ]{0,20}") {
        // Render a value as SQL and parse it back through a SELECT.
        let v = Value::Str(s.clone());
        let sql = format!("SELECT * FROM t WHERE a = {v}");
        let stmt = dbph::relation::sql::parse_statement(&sql).unwrap();
        match stmt {
            dbph::relation::sql::Statement::Select(sel) => {
                let dnf = sel.filter.unwrap();
                prop_assert_eq!(&dnf.disjuncts()[0].terms()[0].value, &v);
            }
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }
}
