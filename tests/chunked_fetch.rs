//! Chunked table streaming: load-bearing, not cosmetic.
//!
//! The transport frames every response, and frames have a hard cap
//! ([`codec::MAX_FRAME`], with capped variants for tests): a table
//! whose `FetchAll` response outgrows the cap **cannot be framed at
//! all** — the single-frame ceiling that has gated `Snapshot`/rekey
//! since the transport landed (PR 3). This suite proves the chunked
//! protocol closes it:
//!
//! * a table too large for one capped frame streams completely through
//!   `FetchChunk`, every chunk response framing comfortably under the
//!   same cap, and reassembles byte-identically to the monolithic
//!   fetch;
//! * the stream is transport-invariant (TCP responses equal in-process
//!   responses, byte for byte, token for token);
//! * randomized tables and budgets always reassemble exactly, with
//!   strictly advancing tokens and bounded per-chunk payloads.

use dbph::core::codec;
use dbph::core::protocol::{ClientMessage, ServerResponse};
use dbph::core::wire::{WireDecode as _, WireEncode as _};
use dbph::core::{EncryptedTable, NetServer, PooledClient, Server, Transport};
use dbph::swp::{CipherWord, SwpParams};

use proptest::prelude::*;

/// A table whose ciphertext dwarfs the test frame cap: 50 documents
/// of one 2000-byte word each (~100 KiB encoded).
fn big_table() -> EncryptedTable {
    EncryptedTable {
        params: SwpParams::new(2000, 4, 32).unwrap(),
        docs: (0..50u64)
            .map(|i| (i, vec![CipherWord(vec![i as u8; 2000])]))
            .collect(),
        next_doc_id: 50,
    }
}

fn fetch_chunk_msg(name: &str, token: u64, max_bytes: u64) -> Vec<u8> {
    ClientMessage::FetchChunk {
        name: name.into(),
        token,
        max_bytes,
    }
    .to_wire()
}

/// Drives a full chunk stream through `transport`, returning every raw
/// response frame plus the reassembled documents.
fn stream_chunks<T: Transport>(
    transport: &T,
    name: &str,
    max_bytes: u64,
) -> (Vec<Vec<u8>>, EncryptedTable) {
    let mut raw = Vec::new();
    let mut assembled: Option<EncryptedTable> = None;
    let mut token = 0u64;
    loop {
        let bytes = transport
            .call(&fetch_chunk_msg(name, token, max_bytes))
            .unwrap();
        let (chunk, next) = match ServerResponse::from_wire(&bytes).unwrap() {
            ServerResponse::TableChunk { table, next } => (table, next),
            other => panic!("unexpected {other:?}"),
        };
        raw.push(bytes);
        assembled = Some(match assembled {
            None => chunk,
            Some(mut t) => {
                t.docs.extend(chunk.docs);
                t.next_doc_id = chunk.next_doc_id;
                t
            }
        });
        match next {
            Some(n) => {
                assert!(n > token, "token must strictly advance");
                token = n;
            }
            None => return (raw, assembled.expect("at least one chunk")),
        }
    }
}

#[test]
fn chunk_stream_fits_capped_frames_where_fetch_all_cannot() {
    const CAP: usize = 16 << 10; // a deliberately small test-side cap
    const CHUNK: u64 = 4 << 10;

    let server = Server::with_shards(3);
    let create = ClientMessage::CreateTable {
        name: "big".into(),
        table: big_table(),
    }
    .to_wire();
    assert_eq!(
        ServerResponse::from_wire(&server.handle(&create)).unwrap(),
        ServerResponse::Ok
    );

    // The monolithic download: one response, too large to frame. This
    // is the single-frame ceiling — under the capped codec the bytes
    // never reach the wire at all.
    let fetch_all = ClientMessage::FetchAll { name: "big".into() }.to_wire();
    let monolithic = server.handle(&fetch_all);
    let mut sink = Vec::new();
    assert!(
        codec::write_frame_capped(&mut sink, &monolithic, CAP).is_err(),
        "the test table must exceed one capped frame for this proof to bite"
    );
    assert!(sink.is_empty());

    // The chunk stream: every response frames under the same cap…
    let (frames, assembled) = stream_chunks(&server, "big", CHUNK);
    assert!(frames.len() > 1, "must actually take several chunks");
    for (i, frame) in frames.iter().enumerate() {
        let mut sink = Vec::new();
        codec::write_frame_capped(&mut sink, frame, CAP)
            .unwrap_or_else(|e| panic!("chunk {i} of {} exceeded the cap: {e}", frames.len()));
    }
    // …and reassembles the exact table the monolithic fetch carries.
    let whole = match ServerResponse::from_wire(&monolithic).unwrap() {
        ServerResponse::Table(t) => t,
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(assembled, whole);
}

#[test]
fn chunk_stream_is_transport_invariant() {
    let create = ClientMessage::CreateTable {
        name: "big".into(),
        table: big_table(),
    }
    .to_wire();

    let local = Server::with_shards(2);
    let _ = local.handle(&create);

    let remote = Server::with_shards(2);
    let handle = NetServer::spawn(remote.clone(), "127.0.0.1:0").unwrap();
    let pool = PooledClient::connect(handle.addr(), 1).unwrap();
    let _ = pool.call(&create).unwrap();

    // Lock-step: each page's raw response bytes must match, so tokens
    // and boundaries agree frame by frame — and so do the transcripts.
    let (local_frames, local_table) = stream_chunks(&local, "big", 4096);
    let (tcp_frames, tcp_table) = stream_chunks(&pool, "big", 4096);
    assert_eq!(tcp_frames, local_frames, "TCP chunk stream diverged");
    assert_eq!(tcp_table, local_table);
    assert_eq!(remote.observer().events(), local.observer().events());
    handle.shutdown();
}

#[test]
fn doc_id_tokens_are_cut_consistent_under_churn() {
    // The continuation token anchors to document ids, not positions:
    // deletes interleaved between chunks shift every later document's
    // position, but the stream still delivers each surviving document
    // exactly once — no duplicates (a positional token would re-send
    // shifted docs), no skips.
    let server = Server::with_shards(3);
    let create = ClientMessage::CreateTable {
        name: "churn".into(),
        table: big_table(),
    }
    .to_wire();
    assert_eq!(
        ServerResponse::from_wire(&server.handle(&create)).unwrap(),
        ServerResponse::Ok
    );

    let mut delivered: Vec<u64> = Vec::new();
    let mut token = 0u64;
    let mut page = 0u64;
    loop {
        let bytes = server
            .handle(&fetch_chunk_msg("churn", token, 4 << 10))
            .clone();
        let (chunk, next) = match ServerResponse::from_wire(&bytes).unwrap() {
            ServerResponse::TableChunk { table, next } => (table, next),
            other => panic!("unexpected {other:?}"),
        };
        delivered.extend(chunk.docs.iter().map(|(id, _)| *id));
        // Churn between pages: delete one already-delivered document
        // (shifts all later positions left) and one far-future one.
        let victims = vec![page, 40 + page];
        let del = ClientMessage::DeleteDocs {
            name: "churn".into(),
            doc_ids: victims,
        }
        .to_wire();
        assert_eq!(
            ServerResponse::from_wire(&server.handle(&del)).unwrap(),
            ServerResponse::Ok
        );
        page += 1;
        match next {
            Some(n) => {
                assert!(n > token, "token must strictly advance");
                token = n;
            }
            None => break,
        }
    }
    // Exactly-once delivery: every id at most once…
    let mut dedup = delivered.clone();
    dedup.dedup();
    assert_eq!(delivered, dedup, "churn must never re-send a document");
    assert!(delivered.windows(2).all(|w| w[0] < w[1]));
    // …and the only ids missing are ones deleted before their page
    // could deliver them (they live in 40..50, past the early pages).
    for id in 0..50u64 {
        if !delivered.contains(&id) {
            assert!(
                (40..50).contains(&id),
                "doc {id} skipped though it was never deleted pre-delivery"
            );
        }
    }
    assert!(
        delivered.len() < 50 && delivered.len() >= 40,
        "some far-future victims must actually have been cut"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn random_tables_and_budgets_reassemble_exactly(
        doc_words in proptest::collection::vec(
            // (word count, make one word irregular?) per document
            ((0usize..4), any::<bool>()),
            0..25
        ),
        max_bytes in 1u64..4000,
    ) {
        let params = SwpParams::new(13, 4, 32).unwrap();
        let docs: Vec<(u64, Vec<CipherWord>)> = doc_words
            .iter()
            .enumerate()
            .map(|(i, (words, irregular))| {
                let mut ws: Vec<CipherWord> =
                    (0..*words).map(|w| CipherWord(vec![(i ^ w) as u8; 13])).collect();
                if *irregular {
                    ws.push(CipherWord(vec![0xAA; 3]));
                }
                (i as u64, ws)
            })
            .collect();
        let n = docs.len() as u64;
        let table = EncryptedTable { params, docs, next_doc_id: n };

        let server = Server::with_shards(3);
        let create = ClientMessage::CreateTable { name: "t".into(), table: table.clone() }.to_wire();
        prop_assert_eq!(
            ServerResponse::from_wire(&server.handle(&create)).unwrap(),
            ServerResponse::Ok
        );

        let (frames, assembled) = stream_chunks(&server, "t", max_bytes);
        // Exact reassembly, including irregular words and next_doc_id.
        prop_assert_eq!(&assembled, &table);
        // Termination bound: never more than one chunk per document
        // (plus one for the empty table).
        prop_assert!(frames.len() as u64 <= n.max(1));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn chunk_cost_model_matches_the_encoder_exactly(
        // Word lengths per document — deliberately irregular: empty
        // words, short words, and words far off the params width.
        word_lens in proptest::collection::vec(
            proptest::collection::vec(0usize..600, 0..5),
            1..20
        ),
        max_bytes in 1u64..3000,
    ) {
        let params = SwpParams::new(13, 4, 32).unwrap();
        let docs: Vec<(u64, Vec<CipherWord>)> = word_lens
            .iter()
            .enumerate()
            .map(|(i, lens)| {
                (
                    i as u64,
                    lens.iter().map(|&l| CipherWord(vec![i as u8; l])).collect(),
                )
            })
            .collect();
        let n = docs.len() as u64;

        // The budgeting cost model must equal the real encoder's
        // per-document footprint for every word shape: predicted cost
        // == (single-doc table encoding) − (empty table encoding).
        let empty_len = EncryptedTable {
            params,
            docs: vec![],
            next_doc_id: n,
        }
        .to_wire()
        .len() as u64;
        for (id, words) in &docs {
            let predicted =
                dbph::core::wire::encoded_doc_len(words.iter().map(|w| w.0.len()));
            let actual = EncryptedTable {
                params,
                docs: vec![(*id, words.clone())],
                next_doc_id: n,
            }
            .to_wire()
            .len() as u64
                - empty_len;
            prop_assert_eq!(predicted, actual, "cost model diverged for doc {}", id);
        }

        // And the server's chunking must honor that model: each chunk
        // stays within the budget unless a single oversized document
        // forces progress.
        let table = EncryptedTable { params, docs, next_doc_id: n };
        let server = Server::with_shards(2);
        let create =
            ClientMessage::CreateTable { name: "c".into(), table: table.clone() }.to_wire();
        prop_assert_eq!(
            ServerResponse::from_wire(&server.handle(&create)).unwrap(),
            ServerResponse::Ok
        );
        let (frames, assembled) = stream_chunks(&server, "c", max_bytes);
        prop_assert_eq!(&assembled, &table);
        for frame in &frames {
            let chunk = match ServerResponse::from_wire(frame).unwrap() {
                ServerResponse::TableChunk { table, .. } => table,
                other => return Err(TestCaseError::fail(format!("unexpected {other:?}"))),
            };
            let cost: u64 = chunk
                .docs
                .iter()
                .map(|(_, words)| {
                    dbph::core::wire::encoded_doc_len(words.iter().map(|w| w.0.len()))
                })
                .sum();
            prop_assert!(
                cost <= max_bytes || chunk.docs.len() == 1,
                "chunk broke its byte budget: {} > {} over {} docs",
                cost,
                max_bytes,
                chunk.docs.len()
            );
        }
    }
}
