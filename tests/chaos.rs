//! Exactly-once mutations under seeded fault schedules.
//!
//! The request envelope ([`ClientMessage::Tagged`]) plus the server's
//! per-client dedup window promise that a retried mutation applies
//! *once*, no matter which acknowledgement the weather ate. This suite
//! holds that promise against deterministic chaos:
//!
//! 1. **Fault-free control.** A tagged session is byte-identical to an
//!    untagged one — same responses for the inner messages, same
//!    observer transcript. The envelope is transport metadata, not
//!    protocol drift.
//! 2. **In-process chaos.** A seeded [`FaultTransport`] loses
//!    requests, loses responses *after* the server applied them (the
//!    schedule that breaks naive retry), cuts pipelined batches short,
//!    and delays exchanges, while the client retries each mutation
//!    envelope verbatim. Every mutation must end acknowledged `Ok`,
//!    and the final store must equal a reference store that applied
//!    each mutation exactly once.
//! 3. **Crash-restart.** The same discipline across a durable server
//!    kill: acked-then-retried envelopes replay from the recovered
//!    dedup window (rebuilt from the raw log records) instead of
//!    re-applying, and un-acked envelopes complete on the recovered
//!    server — still exactly once.
//! 4. **TCP chaos.** A real [`PooledClient`] with a [`RetryPolicy`]
//!    dials through a [`ChaosProxy`] injecting resets, torn frames,
//!    swallowed responses, and delays on the kernel socket path; the
//!    durable store recovered afterwards equals the reference.

use dbph::core::protocol::{ClientMessage, ServerResponse};
use dbph::core::wire::{WireDecode as _, WireEncode as _};
use dbph::core::{
    ChaosPlan, ChaosProxy, FaultPlan, FaultTransport, NetServer, PoolOptions, PooledClient,
    RetryPolicy, Server, TempDir, Transport,
};
use dbph::swp::{CipherWord, SwpParams};

use proptest::prelude::*;
use std::time::Duration;

fn params() -> SwpParams {
    SwpParams::new(13, 4, 32).unwrap()
}

fn word(seed: u64) -> CipherWord {
    CipherWord(vec![(seed % 251) as u8; 13])
}

fn empty_table() -> dbph::core::EncryptedTable {
    dbph::core::EncryptedTable {
        params: params(),
        docs: vec![],
        next_doc_id: 0,
    }
}

fn create_msg(name: &str) -> ClientMessage {
    ClientMessage::CreateTable {
        name: name.into(),
        table: empty_table(),
    }
}

fn append_msg(name: &str, id: u64) -> ClientMessage {
    ClientMessage::Append {
        name: name.into(),
        doc_id: id,
        words: vec![word(id)],
    }
}

fn delete_msg(name: &str, ids: &[u64]) -> ClientMessage {
    ClientMessage::DeleteDocs {
        name: name.into(),
        doc_ids: ids.to_vec(),
    }
}

fn fetch_msg(name: &str) -> Vec<u8> {
    ClientMessage::FetchAll { name: name.into() }.to_wire()
}

fn decode(resp: &[u8]) -> ServerResponse {
    ServerResponse::from_wire(resp).expect("well-formed response")
}

fn is_ok(resp: &[u8]) -> bool {
    !matches!(decode(resp), ServerResponse::Error(_))
}

/// The mutation workload both the chaos run and the reference apply:
/// a create, a dozen appends, and a delete that removes a few.
fn workload(name: &str) -> Vec<ClientMessage> {
    let mut ops = vec![create_msg(name)];
    for id in 0..12u64 {
        ops.push(append_msg(name, id));
    }
    ops.push(delete_msg(name, &[1, 5, 5, 400]));
    ops
}

/// Retries `bytes` through `faulty` until acknowledged. The attempt
/// cap only bounds the weather: after it, injection is disarmed and
/// the final exchange goes through clean — the dedup window must make
/// that *harmless*, not a double apply.
fn retry_until_acked<T: Transport>(faulty: &FaultTransport<T>, bytes: &[u8]) -> Vec<u8> {
    for _ in 0..12 {
        if let Ok(resp) = faulty.call(bytes) {
            return resp;
        }
    }
    faulty.disarm();
    let resp = faulty.call(bytes).expect("clean exchange succeeds");
    faulty.arm();
    resp
}

// --- 1. fault-free control -------------------------------------------------

#[test]
fn fault_free_tagged_session_is_byte_identical_to_untagged() {
    let untagged = Server::with_shards(3);
    let tagged = Server::with_shards(3);

    let mut seq = 0u64;
    for msg in workload("T") {
        let plain = msg.to_wire();
        seq += 1;
        let enveloped = msg.tagged(99, seq).to_wire();
        assert_eq!(
            untagged.handle(&plain),
            tagged.handle(&enveloped),
            "tagged response diverged at seq {seq}"
        );
    }
    // Queries ride untagged on both.
    assert_eq!(
        untagged.handle(&fetch_msg("T")),
        tagged.handle(&fetch_msg("T"))
    );
    assert_eq!(
        untagged.observer().events(),
        tagged.observer().events(),
        "the envelope leaked into the transcript"
    );
}

#[test]
fn duplicate_envelope_replays_without_reapplying() {
    let server = Server::with_shards(2);
    assert!(is_ok(
        &server.handle(&create_msg("T").tagged(7, 1).to_wire())
    ));

    let append = append_msg("T", 0).tagged(7, 2).to_wire();
    let first = server.handle(&append);
    assert!(is_ok(&first));
    // Re-sending the identical envelope replays the identical bytes;
    // without dedup this append would now be rejected as stale.
    assert_eq!(server.handle(&append), first);

    let table = match decode(&server.handle(&fetch_msg("T"))) {
        ServerResponse::Table(t) => t,
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(table.len(), 1, "duplicate envelope was re-applied");
}

// --- 2. in-process chaos ---------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn every_acked_mutation_applies_exactly_once_under_faults(seed in any::<u64>()) {
        let server = Server::with_shards(2);
        let faulty = FaultTransport::new(server.clone(), seed, FaultPlan::default());
        let reference = Server::with_shards(2);

        for (i, op) in workload("T").into_iter().enumerate() {
            let plain = op.to_wire();
            let enveloped = op.tagged(11, i as u64 + 1).to_wire();
            let acked = retry_until_acked(&faulty, &enveloped);
            prop_assert!(
                is_ok(&acked),
                "seed {seed}: mutation {i} acked an error: {:?}",
                decode(&acked)
            );
            prop_assert!(is_ok(&reference.handle(&plain)));
        }

        // The store the chaos run produced equals one clean pass.
        prop_assert_eq!(
            server.handle(&fetch_msg("T")),
            reference.handle(&fetch_msg("T")),
            "seed {}: store diverged from apply-each-once", seed
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn pipelined_batches_cut_mid_way_still_apply_exactly_once(seed in any::<u64>()) {
        let server = Server::with_shards(2);
        let faulty = FaultTransport::new(server.clone(), seed, FaultPlan::default());
        let reference = Server::with_shards(2);

        prop_assert!(is_ok(&retry_until_acked(&faulty, &create_msg("T").tagged(3, 1).to_wire())));
        prop_assert!(is_ok(&reference.handle(&create_msg("T").to_wire())));

        // Three batches of four appends; a batch cut mid-way applies a
        // prefix server-side, and the whole-batch retry must replay
        // the applied prefix and freshly apply the rest.
        for batch in 0..3u64 {
            let envelopes: Vec<Vec<u8>> = (0..4u64)
                .map(|k| {
                    let id = batch * 4 + k;
                    append_msg("T", id).tagged(3, 2 + id).to_wire()
                })
                .collect();
            let mut attempts = 0;
            let acked = loop {
                match faulty.call_many(&envelopes) {
                    Ok(responses) => break responses,
                    Err(_) if attempts < 12 => attempts += 1,
                    Err(_) => {
                        // End the storm; the clean retry must replay,
                        // not re-apply.
                        faulty.disarm();
                        let responses = faulty.call_many(&envelopes).expect("clean batch");
                        faulty.arm();
                        break responses;
                    }
                }
            };
            for (k, resp) in acked.iter().enumerate() {
                prop_assert!(
                    is_ok(resp),
                    "seed {seed}: batch {batch} slot {k} acked an error: {:?}",
                    decode(resp)
                );
            }
            for k in 0..4u64 {
                prop_assert!(is_ok(&reference.handle(&append_msg("T", batch * 4 + k).to_wire())));
            }
        }

        prop_assert_eq!(
            server.handle(&fetch_msg("T")),
            reference.handle(&fetch_msg("T")),
            "seed {}: batched store diverged from apply-each-once", seed
        );
    }
}

// --- 3. crash-restart ------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn retries_straddling_a_server_restart_stay_exactly_once(seed in any::<u64>()) {
        let tmp = TempDir::new("chaos-restart").unwrap();
        let reference = Server::with_shards(2);
        let ops = workload("T");
        let split = ops.len() / 2;

        // Phase 1: chaos up to the split, then kill the server.
        let mut acked_before: Vec<Vec<u8>> = Vec::new();
        {
            let server = Server::open_durable(tmp.path(), 2).unwrap();
            let faulty = FaultTransport::new(server, seed, FaultPlan::default());
            for (i, op) in ops[..split].iter().enumerate() {
                let enveloped = op.clone().tagged(11, i as u64 + 1).to_wire();
                prop_assert!(is_ok(&retry_until_acked(&faulty, &enveloped)));
                acked_before.push(enveloped);
            }
            // Dropping every handle is the in-process `kill -9`: the
            // durable log is whatever already hit the segment files.
        }

        // Phase 2: recover, then retry *already-acked* envelopes as a
        // client whose acks were lost in the crash would, and finish
        // the workload under fresh chaos.
        let recovered = Server::open_durable(tmp.path(), 2).unwrap();
        for enveloped in &acked_before {
            prop_assert!(
                is_ok(&recovered.handle(enveloped)),
                "seed {seed}: replay after restart was refused"
            );
        }
        let faulty = FaultTransport::new(recovered.clone(), seed ^ 0xdead_beef, FaultPlan::default());
        for (i, op) in ops[split..].iter().enumerate() {
            let enveloped = op.clone().tagged(11, (split + i) as u64 + 1).to_wire();
            prop_assert!(is_ok(&retry_until_acked(&faulty, &enveloped)));
        }

        for op in &ops {
            prop_assert!(is_ok(&reference.handle(&op.to_wire())));
        }
        prop_assert_eq!(
            recovered.handle(&fetch_msg("T")),
            reference.handle(&fetch_msg("T")),
            "seed {}: store after crash-straddling retries diverged", seed
        );
    }
}

// --- 4. TCP chaos ----------------------------------------------------------

#[test]
fn pooled_client_retries_through_chaos_proxy_exactly_once() {
    for seed in [1u64, 0xfeed_f00d, 0x5eed_0007] {
        let tmp = TempDir::new("chaos-tcp").unwrap();
        let reference = Server::with_shards(2);
        {
            let server = Server::open_durable(tmp.path(), 2).unwrap();
            let handle = NetServer::spawn(server, "127.0.0.1:0").unwrap();
            let proxy = ChaosProxy::spawn(handle.addr(), seed, ChaosPlan::default()).unwrap();
            let client = PooledClient::connect_with(
                proxy.addr(),
                PoolOptions {
                    capacity: 2,
                    retry: RetryPolicy {
                        max_attempts: 24,
                        base_backoff: Duration::from_millis(1),
                        max_backoff: Duration::from_millis(8),
                        deadline: None,
                        jitter_seed: seed,
                    },
                    io_timeout: Some(Duration::from_secs(5)),
                    checkout_timeout: Some(Duration::from_secs(5)),
                    client_id: Some(21),
                },
            )
            .unwrap();

            for op in workload("T") {
                let resp = client.call(&op.to_wire()).expect("retries exhausted");
                assert!(
                    is_ok(&resp),
                    "seed {seed}: acked an error over chaos TCP: {:?}",
                    decode(&resp)
                );
            }
            // Queries keep answering through the same weather.
            let fetched = client
                .call(&fetch_msg("T"))
                .expect("query retries exhausted");
            assert!(matches!(decode(&fetched), ServerResponse::Table(_)));

            assert!(
                proxy.faults_injected() > 0,
                "seed {seed}: the schedule never fired — the run proved nothing"
            );
            proxy.shutdown();
            handle.shutdown();
        }

        for op in workload("T") {
            assert!(is_ok(&reference.handle(&op.to_wire())));
        }
        let recovered = Server::open_durable(tmp.path(), 2).unwrap();
        assert_eq!(
            recovered.handle(&fetch_msg("T")),
            reference.handle(&fetch_msg("T")),
            "seed {seed}: durable store behind the chaos proxy diverged"
        );
    }
}
