//! Robustness at the socket seam: timeouts, bounded waits, and
//! fail-closed degradation over the network.
//!
//! 1. **Idle-session reaping.** Both front-ends evict sessions that go
//!    silent past [`NetOptions::idle_timeout`], count them in
//!    [`ServerHandle::idle_reaped`], and keep serving fresh
//!    connections afterwards. An *active* session is never reaped.
//! 2. **Bounded checkout.** With every pooled connection checked out
//!    and [`PoolOptions::checkout_timeout`] set, a second caller gets
//!    a distinct pool-exhausted [`PhError::Transport`] instead of
//!    waiting forever.
//! 3. **Socket timeouts.** A hung server (accepts, never replies)
//!    turns into a timely transport error when
//!    [`PoolOptions::io_timeout`] is set — the client's thread comes
//!    back, the caller decides what next.
//! 4. **Poisoned-log degradation over TCP.** After an injected
//!    `fdatasync` failure, mutations arriving over the network fail
//!    closed with the distinct durability error while queries and
//!    chunked fetches keep answering — on both front-ends.
//! 5. **Stale duplicates are non-retriable.** A tagged request whose
//!    id aged below the dedup watermark is rejected with the distinct
//!    [`dbph::core::protocol::STALE_DUPLICATE_PREFIX`] error, which a
//!    retry-enabled [`PooledClient`] surfaces immediately — re-sending
//!    can only get the same answer, so no backoff is ever spent on it.
//! 6. **Liveness probe.** `Ping` answers `Status` (poisoned-log flag,
//!    table count, replication lag) on both front-ends — the probe
//!    failover logic uses to decide a primary is really gone versus
//!    merely degraded.
//! 7. **Connect-refused is classified.** A dial that fails with
//!    `ECONNREFUSED` carries a distinct marker
//!    ([`dbph::core::PhError::is_connect_refused`]) and the retry loop
//!    spends *zero* backoff on it — the peer's TCP stack answered
//!    instantly, so waiting cannot help, and failover to a promoted
//!    follower should happen now, not after the budget.

use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dbph::core::protocol::{ClientMessage, ServerResponse};
use dbph::core::wire::{WireDecode as _, WireEncode as _};
use dbph::core::{
    DurableOptions, FrontEnd, NetOptions, NetServer, PoolOptions, PooledClient, RetryPolicy,
    Server, TempDir, Transport,
};
use dbph::swp::{CipherWord, SwpParams};

fn empty_table() -> dbph::core::EncryptedTable {
    dbph::core::EncryptedTable {
        params: SwpParams::new(13, 4, 32).unwrap(),
        docs: vec![],
        next_doc_id: 0,
    }
}

fn create_msg(name: &str) -> Vec<u8> {
    ClientMessage::CreateTable {
        name: name.into(),
        table: empty_table(),
    }
    .to_wire()
}

fn append_msg(name: &str, id: u64) -> Vec<u8> {
    ClientMessage::Append {
        name: name.into(),
        doc_id: id,
        words: vec![CipherWord(vec![(id % 251) as u8; 13])],
    }
    .to_wire()
}

fn fetch_msg(name: &str) -> Vec<u8> {
    ClientMessage::FetchAll { name: name.into() }.to_wire()
}

fn chunk_msg(name: &str) -> Vec<u8> {
    ClientMessage::FetchChunk {
        name: name.into(),
        token: 0,
        max_bytes: 1 << 16,
    }
    .to_wire()
}

fn decode(resp: &[u8]) -> ServerResponse {
    ServerResponse::from_wire(resp).expect("well-formed response")
}

fn is_ok(resp: &[u8]) -> bool {
    !matches!(decode(resp), ServerResponse::Error(_))
}

/// Polls `probe` until it returns true or ~5s pass.
fn eventually(mut probe: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if probe() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    false
}

// --- 1. idle-session reaping ----------------------------------------------

#[test]
fn idle_sessions_are_reaped_on_both_front_ends() {
    for front_end in [FrontEnd::ThreadPerConnection, FrontEnd::EventLoop] {
        let server = Server::with_shards(2);
        let handle = NetServer::spawn_opts(
            server,
            "127.0.0.1:0",
            NetOptions {
                front_end,
                idle_timeout: Some(Duration::from_millis(120)),
            },
        )
        .unwrap();

        // A session that speaks once and then goes silent.
        let idler = PooledClient::connect(handle.addr(), 1).unwrap();
        assert!(is_ok(&idler.call(&create_msg("idle")).unwrap()));

        assert!(
            eventually(|| handle.idle_reaped() >= 1),
            "{front_end:?}: silent session was never reaped"
        );

        // The listener is still healthy: a fresh connection works.
        let fresh = PooledClient::connect(handle.addr(), 1).unwrap();
        assert!(is_ok(&fresh.call(&fetch_msg("idle")).unwrap()));
        handle.shutdown();
    }
}

#[test]
fn active_sessions_survive_the_idle_reaper() {
    for front_end in [FrontEnd::ThreadPerConnection, FrontEnd::EventLoop] {
        let server = Server::with_shards(2);
        let handle = NetServer::spawn_opts(
            server,
            "127.0.0.1:0",
            NetOptions {
                front_end,
                idle_timeout: Some(Duration::from_millis(150)),
            },
        )
        .unwrap();
        let client = PooledClient::connect(handle.addr(), 1).unwrap();
        assert!(is_ok(&client.call(&create_msg("busy")).unwrap()));

        // Keep the session warm across several idle budgets.
        let until = Instant::now() + Duration::from_millis(600);
        while Instant::now() < until {
            assert!(
                is_ok(&client.call(&fetch_msg("busy")).unwrap()),
                "{front_end:?}: active session was cut mid-conversation"
            );
            std::thread::sleep(Duration::from_millis(40));
        }
        assert_eq!(
            handle.idle_reaped(),
            0,
            "{front_end:?}: reaper counted an active session"
        );
        handle.shutdown();
    }
}

// --- 2 & 3. bounded checkout and socket timeouts ---------------------------

/// A server that accepts connections and never responds — the hang
/// case timeouts exist for. Keeps the accepted sockets alive so the
/// peer blocks on read instead of seeing EOF.
fn hung_listener() -> (std::net::SocketAddr, Arc<std::sync::atomic::AtomicBool>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    std::thread::spawn(move || {
        listener.set_nonblocking(true).unwrap();
        let mut held = Vec::new();
        while !stop_flag.load(std::sync::atomic::Ordering::SeqCst) {
            match listener.accept() {
                Ok((conn, _)) => held.push(conn),
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        }
    });
    (addr, stop)
}

#[test]
fn io_timeout_turns_a_hung_server_into_a_timely_error() {
    let (addr, stop) = hung_listener();
    let client = PooledClient::connect_with(
        addr,
        PoolOptions {
            capacity: 1,
            io_timeout: Some(Duration::from_millis(200)),
            ..PoolOptions::default()
        },
    )
    .unwrap();

    let started = Instant::now();
    let err = client.call(&fetch_msg("T")).unwrap_err();
    let waited = started.elapsed();
    assert!(
        matches!(err, dbph::core::PhError::Transport(_)),
        "hung server must surface as a transport error, got {err:?}"
    );
    assert!(
        waited < Duration::from_secs(3),
        "io_timeout did not bound the hang: waited {waited:?}"
    );
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
}

#[test]
fn exhausted_pool_fails_checkout_after_the_bounded_wait() {
    let (addr, stop) = hung_listener();
    let client = PooledClient::connect_with(
        addr,
        PoolOptions {
            capacity: 1,
            // The holder thread's call parks on the hung server for
            // well past the waiter's checkout budget.
            io_timeout: Some(Duration::from_secs(2)),
            checkout_timeout: Some(Duration::from_millis(150)),
            ..PoolOptions::default()
        },
    )
    .unwrap();

    let holder = {
        let client = client.clone();
        std::thread::spawn(move || client.call(&fetch_msg("T")))
    };
    // Let the holder win the only connection.
    std::thread::sleep(Duration::from_millis(100));

    let started = Instant::now();
    let err = client.call(&fetch_msg("T")).unwrap_err();
    assert!(
        matches!(&err, dbph::core::PhError::Transport(m) if m.contains("pool exhausted")),
        "expected the pool-exhausted error, got {err:?}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(1),
        "checkout wait was not bounded"
    );

    assert!(
        holder.join().unwrap().is_err(),
        "the hung call cannot succeed"
    );
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
}

#[test]
fn retry_policy_gives_up_after_its_attempt_budget() {
    // No server at all: every attempt fails fast with connection
    // refused; the call must come back after exactly the budget.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let client = PooledClient::connect_with(
        addr,
        PoolOptions {
            capacity: 1,
            retry: RetryPolicy {
                max_attempts: 3,
                base_backoff: Duration::from_millis(5),
                max_backoff: Duration::from_millis(10),
                deadline: None,
                jitter_seed: 7,
            },
            ..PoolOptions::default()
        },
    )
    .unwrap();
    drop(listener); // now every dial is refused

    let err = client.call(&append_msg("T", 0)).unwrap_err();
    assert!(matches!(err, dbph::core::PhError::Transport(_)));
}

// --- 4. poisoned-log degradation over TCP ----------------------------------

#[test]
fn poisoned_log_fails_mutations_closed_over_tcp_but_keeps_answering_queries() {
    for front_end in [FrontEnd::ThreadPerConnection, FrontEnd::EventLoop] {
        let tmp = TempDir::new("net-poison").unwrap();
        let server =
            Server::open_durable_with(tmp.path(), 2, Some(1), DurableOptions::default()).unwrap();
        let handle = NetServer::spawn_opts(
            server.clone(),
            "127.0.0.1:0",
            NetOptions {
                front_end,
                idle_timeout: None,
            },
        )
        .unwrap();
        let client = PooledClient::connect(handle.addr(), 2).unwrap();

        assert!(is_ok(&client.call(&create_msg("T")).unwrap()));
        assert!(is_ok(&client.call(&append_msg("T", 0)).unwrap()));

        // Break the next barrier; the mutation that trips it poisons
        // the log.
        let log = Arc::clone(server.durable_log().unwrap());
        log.inject_sync_failures(1);
        match decode(&client.call(&append_msg("T", 1)).unwrap()) {
            ServerResponse::Error(m) => assert!(
                m.contains("durability error"),
                "{front_end:?}: wrong error class for the tripping mutation: {m}"
            ),
            other => panic!("{front_end:?}: mutation acked against a failed sync: {other:?}"),
        }
        assert!(log.is_poisoned());

        // Fail closed from here on: every mutation refused, with the
        // distinct durability error...
        match decode(&client.call(&append_msg("T", 2)).unwrap()) {
            ServerResponse::Error(m) => assert!(
                m.contains("durability error"),
                "{front_end:?}: wrong error class after poisoning: {m}"
            ),
            other => panic!("{front_end:?}: mutation accepted on a poisoned log: {other:?}"),
        }
        // ...while reads — plain and chunked — still answer over the
        // same connections. The tripping append was applied in memory
        // before its barrier failed (it was refused, never acked — the
        // ack is what durability gates), so the live store holds two
        // docs; the post-poison append was refused before apply.
        match decode(&client.call(&fetch_msg("T")).unwrap()) {
            ServerResponse::Table(t) => assert_eq!(t.len(), 2),
            other => panic!("{front_end:?}: fetch failed on a poisoned log: {other:?}"),
        }
        assert!(
            matches!(
                decode(&client.call(&chunk_msg("T")).unwrap()),
                ServerResponse::TableChunk { .. }
            ),
            "{front_end:?}: chunked fetch failed on a poisoned log"
        );
        handle.shutdown();
    }
}

// --- 5. stale duplicates are non-retriable ---------------------------------

#[test]
fn stale_duplicate_surfaces_immediately_through_the_retry_policy() {
    use dbph::core::protocol::STALE_DUPLICATE_PREFIX;
    use dbph::core::PhError;

    let server = Server::new();
    let handle = NetServer::spawn(server, "127.0.0.1:0").unwrap();
    // A retry policy with a backoff so wide that any accidental retry
    // of the stale rejection would blow the timing assertion below.
    let client = PooledClient::connect_with(
        handle.addr(),
        PoolOptions {
            capacity: 2,
            retry: RetryPolicy {
                max_attempts: 4,
                base_backoff: Duration::from_secs(2),
                max_backoff: Duration::from_secs(2),
                deadline: None,
                jitter_seed: 3,
            },
            ..PoolOptions::default()
        },
    )
    .unwrap();

    let tagged = |seq: u64, msg: ClientMessage| {
        ClientMessage::Tagged {
            client_id: 9,
            seq,
            inner: Box::new(msg),
        }
        .to_wire()
    };

    assert!(is_ok(&client.call(&create_msg("T")).unwrap()));
    // Age seq 1 out of the bounded window: 150 tagged appends push the
    // per-client watermark past it and evict its cached response.
    for seq in 1..=150u64 {
        assert!(is_ok(
            &client
                .call(&tagged(
                    seq,
                    ClientMessage::Append {
                        name: "T".into(),
                        doc_id: seq - 1,
                        words: vec![CipherWord(vec![(seq % 251) as u8; 13])],
                    },
                ))
                .unwrap()
        ));
    }

    // A retry of seq 1 now lands below the watermark. The server must
    // answer with the *distinct* stale error — not re-apply, not the
    // generic duplicate replay — and the pooled client must hand it
    // straight back instead of burning its 2 s backoffs on a rejection
    // that can never change.
    let started = Instant::now();
    let resp = client
        .call(&tagged(
            1,
            ClientMessage::Append {
                name: "T".into(),
                doc_id: 0,
                words: vec![CipherWord(vec![1u8; 13])],
            },
        ))
        .unwrap();
    let elapsed = started.elapsed();
    match decode(&resp) {
        ServerResponse::Error(m) => {
            assert!(
                m.starts_with(STALE_DUPLICATE_PREFIX),
                "stale rejection must carry the distinct prefix: {m}"
            );
            assert!(
                PhError::Protocol(m).is_stale_duplicate(),
                "the typed error must classify as a stale duplicate"
            );
        }
        other => panic!("stale retry must be rejected, got {other:?}"),
    }
    assert!(
        elapsed < Duration::from_secs(1),
        "stale rejection must surface without retries, took {elapsed:?}"
    );

    // The rejection changed nothing server-side: exactly the 150
    // applied docs are stored.
    match decode(&client.call(&fetch_msg("T")).unwrap()) {
        ServerResponse::Table(t) => assert_eq!(t.len(), 150),
        other => panic!("fetch failed: {other:?}"),
    }
    handle.shutdown();
}

// --- 6. liveness probe ------------------------------------------------------

#[test]
fn ping_answers_a_status_probe_on_both_front_ends() {
    let ping = ClientMessage::Ping.to_wire();
    for front_end in [FrontEnd::ThreadPerConnection, FrontEnd::EventLoop] {
        let tmp = TempDir::new("net-ping").unwrap();
        let server =
            Server::open_durable_with(tmp.path(), 2, Some(1), DurableOptions::default()).unwrap();
        let handle = NetServer::spawn_opts(
            server.clone(),
            "127.0.0.1:0",
            NetOptions {
                front_end,
                idle_timeout: None,
            },
        )
        .unwrap();
        let client = PooledClient::connect(handle.addr(), 1).unwrap();

        // Healthy and empty.
        match decode(&client.call(&ping).unwrap()) {
            ServerResponse::Status {
                poisoned,
                tables,
                repl_lag,
                semi_sync_degraded,
                resyncs,
            } => {
                assert!(!poisoned, "{front_end:?}: fresh log reported poisoned");
                assert_eq!(tables, 0, "{front_end:?}");
                assert_eq!(repl_lag, 0, "{front_end:?}");
                assert_eq!(semi_sync_degraded, 0, "{front_end:?}");
                assert_eq!(resyncs, 0, "{front_end:?}");
            }
            other => panic!("{front_end:?}: ping answered {other:?}"),
        }

        // The table count tracks the store.
        assert!(is_ok(&client.call(&create_msg("A")).unwrap()));
        assert!(is_ok(&client.call(&create_msg("B")).unwrap()));
        match decode(&client.call(&ping).unwrap()) {
            ServerResponse::Status { tables, .. } => assert_eq!(tables, 2, "{front_end:?}"),
            other => panic!("{front_end:?}: ping answered {other:?}"),
        }

        // The probe sees through a poisoned log — and keeps answering
        // on it, which is the whole point: failover logic needs the
        // answer exactly when mutations are failing.
        let log = Arc::clone(server.durable_log().unwrap());
        log.inject_sync_failures(1);
        let _ = client.call(&append_msg("A", 0)).unwrap(); // trips the barrier
        assert!(log.is_poisoned());
        match decode(&client.call(&ping).unwrap()) {
            ServerResponse::Status { poisoned, .. } => {
                assert!(poisoned, "{front_end:?}: probe missed the poisoned log");
            }
            other => panic!("{front_end:?}: ping failed on a poisoned log: {other:?}"),
        }
        handle.shutdown();
    }
}

#[test]
fn ping_works_on_an_in_memory_server() {
    let server = Server::with_shards(1);
    assert!(is_ok(&server.handle(&create_msg("T"))));
    match decode(&server.handle(&ClientMessage::Ping.to_wire())) {
        ServerResponse::Status {
            poisoned,
            tables,
            repl_lag,
            semi_sync_degraded,
            resyncs,
        } => {
            assert!(!poisoned, "no log, nothing to poison");
            assert_eq!(tables, 1);
            assert_eq!(repl_lag, 0);
            assert_eq!(semi_sync_degraded, 0);
            assert_eq!(resyncs, 0);
        }
        other => panic!("ping answered {other:?}"),
    }
}

// --- 7. connect-refused fails over immediately ------------------------------

#[test]
fn connect_refused_is_classified_and_spends_no_backoff() {
    // Bind-then-drop guarantees a port that answers RST, not a
    // blackhole: the refusal is instant, and so must the error be.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let client = PooledClient::connect_with(
        addr,
        PoolOptions {
            capacity: 1,
            retry: RetryPolicy {
                // With 2 s backoffs, a single backoff wait would blow
                // the timing assertion — zero-backoff-on-refused is
                // what keeps failover prompt.
                max_attempts: 4,
                base_backoff: Duration::from_secs(2),
                max_backoff: Duration::from_secs(2),
                deadline: None,
                jitter_seed: 11,
            },
            ..PoolOptions::default()
        },
    )
    .unwrap();
    drop(listener);

    let started = Instant::now();
    let err = client.call(&append_msg("T", 0)).unwrap_err();
    let elapsed = started.elapsed();
    assert!(
        err.is_connect_refused(),
        "a dead peer must classify as connect-refused, got {err:?}"
    );
    assert!(
        elapsed < Duration::from_secs(1),
        "refused dials must skip the backoff entirely, took {elapsed:?}"
    );

    // The classification is specific: other transport errors (here, a
    // hung server tripping the io timeout) do not carry it.
    let (hung_addr, stop) = hung_listener();
    let hung_client = PooledClient::connect_with(
        hung_addr,
        PoolOptions {
            capacity: 1,
            io_timeout: Some(Duration::from_millis(100)),
            ..PoolOptions::default()
        },
    )
    .unwrap();
    let err = hung_client.call(&fetch_msg("T")).unwrap_err();
    assert!(
        !err.is_connect_refused(),
        "a timeout is not a refusal: {err:?}"
    );
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
}
