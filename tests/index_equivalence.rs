//! Index ≡ scan equivalence: the opt-in encrypted inverted index must
//! be invisible in every response, and — switched off — invisible
//! everywhere.
//!
//! Four obligations, matching `dbph::core::index`'s contract:
//!
//! 1. **Byte-identical responses.** For any session (uploads, queries,
//!    append/delete churn through shard rebalances, query batches,
//!    fetches), an index-enabled server's raw wire responses equal the
//!    scan-only server's, across shard counts × pool sizes. The SWP
//!    match decision is deterministic per (trapdoor, word) — false
//!    positives included — so this is exact equality, not set
//!    equality.
//! 2. **Off means off.** With the index disabled (the default) the
//!    whole observable surface — responses *and* observer transcript —
//!    is byte-identical to the scan-only baseline, and no `IndexProbe`
//!    event ever appears. Enabled, the transcript gains exactly the
//!    probe events; the `Query` events (terms + matched ids) stay
//!    identical.
//! 3. **Durable skip-when-off.** Compaction writes the multimap
//!    snapshot record only when the index is enabled *and* non-empty:
//!    a scan-only data directory and an enabled-but-never-probed one
//!    are file-for-file byte-identical; a warmed index adds its record
//!    and survives kill + recovery with the same at-rest image.
//! 4. **Randomized equivalence.** Proptest drives random relations and
//!    churn schedules through both plans and requires byte-equal
//!    responses throughout.

use dbph::core::protocol::{ClientMessage, WireTrapdoor};
use dbph::core::server::ServerEvent;
use dbph::core::wire::WireEncode;
use dbph::core::{DatabasePh, DurableOptions, FinalSwpPh, Server, TempDir};
use dbph::crypto::SecretKey;
use dbph::relation::{Query, Relation, Tuple, Value};
use dbph::workload::EmployeeGen;

use proptest::prelude::*;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const POOL_SIZES: [usize; 2] = [1, 4];

fn master() -> SecretKey {
    SecretKey::from_bytes([77u8; 32])
}

fn ph() -> FinalSwpPh {
    FinalSwpPh::new(EmployeeGen::schema(), &master()).unwrap()
}

fn sample_queries() -> Vec<Query> {
    vec![
        Query::select("dept", "dept-00"),
        Query::select("dept", "dept-03"),
        Query::select("salary", 5500i64),
        Query::select("name", "emp-0000042"),
        Query::select("name", "no-such-emp"),
    ]
}

fn encrypt(scheme: &FinalSwpPh, q: &Query) -> Vec<WireTrapdoor> {
    let qct = scheme.encrypt_query(q).unwrap();
    qct.terms.iter().map(WireTrapdoor::from_trapdoor).collect()
}

/// A churn-heavy session: warm queries, a large append batch (enough
/// to trip the append-side shard rebalance), re-queries (delta
/// catch-up), a wide delete (posting purge + hollowed-shard
/// rebalance), re-queries, duplicate-heavy query batches, and a final
/// fetch. Returns every raw response.
fn drive_churn_session(server: &Server, relation: &Relation, queries: &[Query]) -> Vec<Vec<u8>> {
    let scheme = ph();
    let table = scheme.encrypt_table(relation).unwrap();
    let base = relation.len() as u64;
    let mut responses = Vec::new();
    let mut send = |msg: ClientMessage| responses.push(server.handle(&msg.to_wire()));

    send(ClientMessage::CreateTable {
        name: "Emp".into(),
        table,
    });
    // Round 1: warms one posting per distinct term when the index is on.
    for query in queries {
        send(ClientMessage::Query {
            name: "Emp".into(),
            terms: encrypt(&scheme, query),
        });
    }
    // Append churn past the rebalance threshold; the new docs reuse the
    // generator's value domains so warmed postings must catch up.
    let extra = scheme
        .encrypt_table(
            &EmployeeGen {
                rows: 180,
                ..EmployeeGen::default()
            }
            .generate(21),
        )
        .unwrap();
    send(ClientMessage::AppendBatch {
        name: "Emp".into(),
        docs: extra
            .docs
            .iter()
            .enumerate()
            .map(|(i, (_, words))| (base + i as u64, words.clone()))
            .collect(),
    });
    // Round 2: every warmed posting is stale (bound < next id) — the
    // delta scan must make indexed answers equal fresh scans.
    for query in queries {
        send(ClientMessage::Query {
            name: "Emp".into(),
            terms: encrypt(&scheme, query),
        });
    }
    // Delete a third of the original docs (plus repeats and a miss):
    // purges postings and hollows early shards into a rebalance.
    let mut victims: Vec<u64> = (0..base).step_by(3).collect();
    victims.push(0);
    victims.push(999_999);
    send(ClientMessage::DeleteDocs {
        name: "Emp".into(),
        doc_ids: victims,
    });
    // Round 3: postings must have forgotten the purged docs.
    for query in queries {
        send(ClientMessage::Query {
            name: "Emp".into(),
            terms: encrypt(&scheme, query),
        });
    }
    // Batches: duplicates share the multimap entry; the empty
    // conjunction and the empty batch exercise the degenerate plans.
    send(ClientMessage::QueryBatch {
        name: "Emp".into(),
        queries: vec![
            encrypt(&scheme, &Query::select("dept", "dept-00")),
            encrypt(&scheme, &Query::select("dept", "dept-00")),
            vec![],
            encrypt(&scheme, &Query::select("salary", 5500i64)),
        ],
    });
    send(ClientMessage::QueryBatch {
        name: "Emp".into(),
        queries: vec![],
    });
    send(ClientMessage::FetchAll { name: "Emp".into() });
    responses
}

/// The transcript with `IndexProbe` events removed — everything the
/// scan-only server would have recorded.
fn without_probes(events: Vec<ServerEvent>) -> Vec<ServerEvent> {
    events
        .into_iter()
        .filter(|e| !matches!(e, ServerEvent::IndexProbe { .. }))
        .collect()
}

fn probe_count(events: &[ServerEvent]) -> usize {
    events
        .iter()
        .filter(|e| matches!(e, ServerEvent::IndexProbe { .. }))
        .count()
}

#[test]
fn indexed_responses_byte_identical_to_scan_across_shards_and_pools() {
    let relation = EmployeeGen {
        rows: 260,
        ..EmployeeGen::default()
    }
    .generate(9);
    let queries = sample_queries();

    let baseline = Server::with_pool(1, 1);
    let baseline_responses = drive_churn_session(&baseline, &relation, &queries);
    let baseline_events = baseline.observer().events();
    assert_eq!(
        probe_count(&baseline_events),
        0,
        "the default server must never probe"
    );

    for shards in SHARD_COUNTS {
        for workers in POOL_SIZES {
            // Off: the whole observable surface matches the baseline.
            let off = Server::with_pool(shards, workers);
            let off_responses = drive_churn_session(&off, &relation, &queries);
            assert_eq!(
                off_responses, baseline_responses,
                "index-off responses diverged at {shards} shard(s) × {workers} worker(s)"
            );
            assert_eq!(
                off.observer().events(),
                baseline_events,
                "index-off transcript diverged at {shards} shard(s) × {workers} worker(s)"
            );

            // On: responses still byte-identical; the transcript gains
            // probe events and nothing else.
            let on = Server::with_pool(shards, workers);
            on.enable_index();
            assert!(on.index_enabled());
            let on_responses = drive_churn_session(&on, &relation, &queries);
            assert_eq!(
                on_responses, baseline_responses,
                "indexed responses diverged at {shards} shard(s) × {workers} worker(s)"
            );
            let on_events = on.observer().events();
            assert!(
                probe_count(&on_events) > 0,
                "enabled index must record probes"
            );
            assert_eq!(
                without_probes(on_events),
                baseline_events,
                "indexed transcript (probes aside) diverged at {shards}×{workers}"
            );
        }
    }
}

#[test]
fn error_paths_match_with_index_on() {
    // The planner must not change failure shapes: unknown tables (and
    // even the empty batch against one) render the same error bytes
    // whichever plan would have run.
    let scheme = ph();
    let q = encrypt(&scheme, &Query::select("dept", "dept-00"));
    let msgs = [
        ClientMessage::Query {
            name: "nope".into(),
            terms: q.clone(),
        }
        .to_wire(),
        ClientMessage::QueryBatch {
            name: "nope".into(),
            queries: vec![],
        }
        .to_wire(),
        ClientMessage::QueryBatch {
            name: "nope".into(),
            queries: vec![q],
        }
        .to_wire(),
    ];
    let off = Server::new();
    let on = Server::new();
    on.enable_index();
    for m in &msgs {
        assert_eq!(on.handle(m), off.handle(m), "error bytes diverged");
    }
}

#[test]
fn index_snapshot_record_is_skipped_when_off_and_survives_restart_when_on() {
    let relation = EmployeeGen {
        rows: 120,
        ..EmployeeGen::default()
    }
    .generate(9);
    let queries = sample_queries();

    // Every named file under a data directory, name → bytes.
    let dir_image = |dir: &std::path::Path| -> Vec<(String, Vec<u8>)> {
        let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
            .unwrap()
            .map(|e| {
                let e = e.unwrap();
                (
                    e.file_name().to_string_lossy().into_owned(),
                    std::fs::read(e.path()).unwrap(),
                )
            })
            .collect();
        files.sort();
        files
    };

    let run = |enable: bool, probe: bool| {
        let tmp = TempDir::new("index-skip").unwrap();
        let server =
            Server::open_durable_with(tmp.path(), 2, Some(1), DurableOptions::default()).unwrap();
        if enable {
            server.enable_index();
        }
        let scheme = ph();
        let table = scheme.encrypt_table(&relation).unwrap();
        let _ = server.handle(
            &ClientMessage::CreateTable {
                name: "Emp".into(),
                table,
            }
            .to_wire(),
        );
        if probe {
            for query in &queries {
                let _ = server.handle(
                    &ClientMessage::Query {
                        name: "Emp".into(),
                        terms: encrypt(&scheme, query),
                    }
                    .to_wire(),
                );
            }
        }
        server.compact().unwrap();
        let at_rest = server.index_at_rest("Emp");
        drop(server);
        (tmp, at_rest)
    };

    // Off, and on-but-never-probed (empty multimap), must write the
    // exact same files: the record kind only exists once it has
    // content to persist.
    let (off_dir, off_at_rest) = run(false, true);
    let (unprobed_dir, _) = run(true, false);
    assert!(
        off_at_rest.is_empty(),
        "scan-only server must hold no postings"
    );
    assert_eq!(
        dir_image(off_dir.path()),
        dir_image(unprobed_dir.path()),
        "an empty multimap must not change the disk image"
    );

    // Warmed: the snapshot gains the index record...
    let (on_dir, on_at_rest) = run(true, true);
    assert!(!on_at_rest.is_empty(), "probed index must hold postings");
    assert_ne!(
        dir_image(off_dir.path()),
        dir_image(on_dir.path()),
        "a warmed multimap must be persisted by compaction"
    );

    // ...and recovery restores both the enablement and the image, so
    // post-restart answers still match a scan server fed the same
    // session.
    let recovered =
        Server::open_durable_with(on_dir.path(), 2, Some(1), DurableOptions::default()).unwrap();
    assert!(
        recovered.index_enabled(),
        "a persisted index implies the plan was on"
    );
    assert_eq!(
        recovered.index_at_rest("Emp"),
        on_at_rest,
        "recovered at-rest image diverged"
    );
    let reference = Server::with_shards(2);
    let scheme = ph();
    let table = scheme.encrypt_table(&relation).unwrap();
    let _ = reference.handle(
        &ClientMessage::CreateTable {
            name: "Emp".into(),
            table,
        }
        .to_wire(),
    );
    for query in &queries {
        let msg = ClientMessage::Query {
            name: "Emp".into(),
            terms: encrypt(&scheme, query),
        }
        .to_wire();
        assert_eq!(
            recovered.handle(&msg),
            reference.handle(&msg),
            "post-restart indexed answer diverged from the scan for {query}"
        );
    }
}

// --- randomized equivalence ------------------------------------------------

fn arb_relation() -> impl Strategy<Value = Relation> {
    proptest::collection::vec(("[a-z]{0,12}", 0i64..50, any::<bool>()), 0..40).prop_map(|rows| {
        let schema = dbph::relation::Schema::new(
            "Rnd",
            vec![
                dbph::relation::Attribute::new("s", dbph::relation::AttrType::Str { max_len: 12 }),
                dbph::relation::Attribute::new("i", dbph::relation::AttrType::Int),
                dbph::relation::Attribute::new("b", dbph::relation::AttrType::Bool),
            ],
        )
        .unwrap();
        Relation::from_tuples(
            schema,
            rows.into_iter()
                .map(|(s, i, b)| Tuple::new(vec![Value::Str(s), Value::Int(i), Value::Bool(b)]))
                .collect(),
        )
        .unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn random_churn_is_plan_invariant(
        relation in arb_relation(),
        extra in arb_relation(),
        // Query picks interleaved through the churn; duplicates are
        // frequent by construction so postings get reused and re-warmed.
        picks in proptest::collection::vec(0usize..4, 1..8),
        delete_stride in 1usize..5,
        key in any::<[u8; 32]>(),
    ) {
        let scheme =
            FinalSwpPh::new(relation.schema().clone(), &SecretKey::from_bytes(key)).unwrap();
        let table = scheme.encrypt_table(&relation).unwrap();
        let extra_ct = scheme.encrypt_table(&extra).unwrap();
        let probes = [
            Query::select("s", "zz"),
            Query::select("i", 7i64),
            Query::select("b", true),
            Query::select("b", false),
        ];
        let base = relation.len() as u64;

        let drive = |server: &Server| -> Vec<Vec<u8>> {
            let mut responses = Vec::new();
            let mut send =
                |msg: ClientMessage| responses.push(server.handle(&msg.to_wire()));
            send(ClientMessage::CreateTable { name: "Rnd".into(), table: table.clone() });
            for &p in &picks {
                send(ClientMessage::Query {
                    name: "Rnd".into(),
                    terms: encrypt(&scheme, &probes[p]),
                });
            }
            send(ClientMessage::AppendBatch {
                name: "Rnd".into(),
                docs: extra_ct
                    .docs
                    .iter()
                    .enumerate()
                    .map(|(i, (_, words))| (base + i as u64, words.clone()))
                    .collect(),
            });
            for &p in &picks {
                send(ClientMessage::Query {
                    name: "Rnd".into(),
                    terms: encrypt(&scheme, &probes[p]),
                });
            }
            send(ClientMessage::DeleteDocs {
                name: "Rnd".into(),
                doc_ids: (0..base + extra.len() as u64)
                    .step_by(delete_stride)
                    .collect(),
            });
            for &p in &picks {
                send(ClientMessage::Query {
                    name: "Rnd".into(),
                    terms: encrypt(&scheme, &probes[p]),
                });
            }
            send(ClientMessage::QueryBatch {
                name: "Rnd".into(),
                queries: picks.iter().map(|&p| encrypt(&scheme, &probes[p])).collect(),
            });
            send(ClientMessage::FetchAll { name: "Rnd".into() });
            responses
        };

        let scan = Server::with_pool(3, 2);
        let scan_responses = drive(&scan);

        let indexed = Server::with_pool(3, 2);
        indexed.enable_index();
        let indexed_responses = drive(&indexed);

        prop_assert_eq!(indexed_responses, scan_responses,
            "indexed plan diverged from the scan under random churn");
        prop_assert_eq!(
            without_probes(indexed.observer().events()),
            scan.observer().events(),
            "indexed transcript (probes aside) diverged under random churn");
    }
}
