//! Primary/follower replication: bootstrap-by-recovery, tailing,
//! semi-sync acks, and chaos-verified failover.
//!
//! The replication stream is the primary's segment log, shipped
//! verbatim; the follower feeds it through the exact crash-recovery
//! path. These tests pin the consequences:
//!
//! 1. **Bootstrap equivalence.** A follower bootstrapped from a live
//!    primary answers byte-identically to the primary — including the
//!    exactly-once dedup window (acked envelopes replay on the
//!    follower's server, never re-apply).
//! 2. **Tailing.** Mutations applied after bootstrap flow to the
//!    follower and keep it byte-identical; a primary compaction moves
//!    the stream base and forces a clean re-bootstrap.
//! 3. **Semi-sync.** With `min_acks = 1` a mutation's acknowledgement
//!    implies the live follower already has it durably; with no
//!    follower the wait degrades to async after the timeout and is
//!    counted, never wedged.
//! 4. **Chaos failover.** Kill the primary mid-pipelined-batch with a
//!    `ChaosProxy` on the replication link, promote the follower,
//!    redirect the retrying `PooledClient`, re-send every envelope —
//!    every acked mutation lands exactly once on the new primary, and
//!    the final store equals a reference that applied each op once.

use dbph::core::protocol::{ClientMessage, ServerResponse};
use dbph::core::wire::{WireDecode as _, WireEncode as _};
use dbph::core::{
    ChaosPlan, ChaosProxy, NetServer, PhError, PoolOptions, PooledClient, Replica, ReplicaOptions,
    ReplicationOptions, RetryPolicy, Server, TempDir, Transport,
};
use dbph::swp::{CipherWord, SwpParams};

use proptest::prelude::*;
use std::time::Duration;

fn params() -> SwpParams {
    SwpParams::new(13, 4, 32).unwrap()
}

fn word(seed: u64) -> CipherWord {
    CipherWord(vec![(seed % 251) as u8; 13])
}

fn empty_table() -> dbph::core::EncryptedTable {
    dbph::core::EncryptedTable {
        params: params(),
        docs: vec![],
        next_doc_id: 0,
    }
}

fn create_msg(name: &str) -> ClientMessage {
    ClientMessage::CreateTable {
        name: name.into(),
        table: empty_table(),
    }
}

fn append_msg(name: &str, id: u64) -> ClientMessage {
    ClientMessage::Append {
        name: name.into(),
        doc_id: id,
        words: vec![word(id)],
    }
}

fn delete_msg(name: &str, ids: &[u64]) -> ClientMessage {
    ClientMessage::DeleteDocs {
        name: name.into(),
        doc_ids: ids.to_vec(),
    }
}

fn fetch_msg(name: &str) -> Vec<u8> {
    ClientMessage::FetchAll { name: name.into() }.to_wire()
}

fn decode(resp: &[u8]) -> ServerResponse {
    ServerResponse::from_wire(resp).expect("well-formed response")
}

fn is_ok(resp: &[u8]) -> bool {
    !matches!(decode(resp), ServerResponse::Error(_))
}

/// A small follower configuration tuned for tests: tight poll loop,
/// distinct id per call site.
fn replica_options(follower_id: u64) -> ReplicaOptions {
    ReplicaOptions {
        follower_id,
        shards: 2,
        poll_interval: Duration::from_millis(1),
        ..ReplicaOptions::default()
    }
}

/// The mutation workload: a create, a dozen appends, a delete.
fn workload(name: &str) -> Vec<ClientMessage> {
    let mut ops = vec![create_msg(name)];
    for id in 0..12u64 {
        ops.push(append_msg(name, id));
    }
    ops.push(delete_msg(name, &[1, 5, 5, 400]));
    ops
}

// --- 1. bootstrap equivalence ----------------------------------------------

#[test]
fn bootstrap_rebuilds_store_and_dedup_byte_identically() {
    let primary_dir = TempDir::new("repl-boot-primary").unwrap();
    let follower_dir = TempDir::new("repl-boot-follower").unwrap();
    let primary = Server::open_durable(primary_dir.path(), 2).unwrap();

    // Tagged workload with a compaction in the middle, so the shipped
    // stream crosses a snapshot + dedup-image + tail-records boundary.
    let mut acked = Vec::new();
    for (i, op) in workload("T").into_iter().enumerate() {
        let enveloped = op.tagged(42, i as u64 + 1).to_wire();
        let resp = primary.handle(&enveloped);
        assert!(is_ok(&resp));
        acked.push((enveloped, resp));
        if i == 6 {
            primary.compact().unwrap();
        }
    }

    // The follower bootstraps over the in-process transport (the same
    // pull protocol the TCP tests exercise end-to-end).
    let replica =
        Replica::bootstrap(primary.clone(), follower_dir.path(), replica_options(1)).unwrap();
    let follower = replica.server();

    assert_eq!(
        follower.handle(&fetch_msg("T")),
        primary.handle(&fetch_msg("T")),
        "bootstrapped store diverged"
    );
    assert_eq!(follower.table_names(), primary.table_names());

    // Exactly-once shipped along: every acked envelope replays its
    // cached response on the follower instead of re-applying.
    for (enveloped, resp) in &acked {
        assert_eq!(
            &follower.handle(enveloped),
            resp,
            "follower re-applied (or refused) a replayed envelope"
        );
    }
    assert_eq!(
        follower.handle(&fetch_msg("T")),
        primary.handle(&fetch_msg("T")),
        "replays mutated the follower"
    );
}

#[test]
fn in_memory_primary_refuses_replication() {
    let primary = Server::with_shards(1);
    let follower_dir = TempDir::new("repl-refused").unwrap();
    let err = match Replica::bootstrap(primary.clone(), follower_dir.path(), replica_options(1)) {
        Ok(_) => panic!("an in-memory server has no log to ship"),
        Err(e) => e,
    };
    assert!(matches!(err, PhError::Protocol(_)), "got {err:?}");
    assert!(matches!(
        primary.set_replication(ReplicationOptions::default()),
        Err(PhError::Durability(_))
    ));
}

// --- 2. tailing ------------------------------------------------------------

#[test]
fn tailing_keeps_the_follower_byte_identical() {
    let primary_dir = TempDir::new("repl-tail-primary").unwrap();
    let follower_dir = TempDir::new("repl-tail-follower").unwrap();
    let primary = Server::open_durable(primary_dir.path(), 2).unwrap();
    assert!(is_ok(&primary.handle(&create_msg("T").to_wire())));

    let replica =
        Replica::bootstrap(primary.clone(), follower_dir.path(), replica_options(2)).unwrap();

    // Appends after bootstrap — a mix of tagged and untagged records.
    for id in 0..8u64 {
        let msg = append_msg("T", id);
        let bytes = if id % 2 == 0 {
            msg.tagged(7, id + 1).to_wire()
        } else {
            msg.to_wire()
        };
        assert!(is_ok(&primary.handle(&bytes)));
    }
    assert!(is_ok(&primary.handle(&delete_msg("T", &[2, 3]).to_wire())));

    replica.sync().unwrap();
    assert_eq!(
        replica.server().handle(&fetch_msg("T")),
        primary.handle(&fetch_msg("T")),
        "tailed store diverged"
    );
    assert_eq!(replica.resyncs(), 0, "plain tailing must not re-bootstrap");

    // The follower's own disk round-trips: recovery over its log (the
    // promote path's foundation) equals the primary's recovery.
    let promoted = replica.promote();
    let primary_fetch = primary.handle(&fetch_msg("T"));
    drop(primary);
    let reference = Server::open_durable(primary_dir.path(), 2).unwrap();
    assert_eq!(promoted.handle(&fetch_msg("T")), primary_fetch);
    assert_eq!(
        promoted.handle(&fetch_msg("T")),
        reference.handle(&fetch_msg("T")),
        "follower recovery diverged from primary recovery"
    );
}

#[test]
fn primary_compaction_forces_a_clean_resync() {
    let primary_dir = TempDir::new("repl-compact-primary").unwrap();
    let follower_dir = TempDir::new("repl-compact-follower").unwrap();
    let primary = Server::open_durable(primary_dir.path(), 2).unwrap();
    assert!(is_ok(&primary.handle(&create_msg("T").to_wire())));

    let replica =
        Replica::bootstrap(primary.clone(), follower_dir.path(), replica_options(3)).unwrap();
    replica.sync().unwrap();

    // Compaction rewrites history: the virtual stream base moves past
    // every handed-out offset and the follower must start over.
    for id in 0..6u64 {
        assert!(is_ok(&primary.handle(&append_msg("T", id).to_wire())));
    }
    primary.compact().unwrap();
    for id in 6..10u64 {
        assert!(is_ok(&primary.handle(&append_msg("T", id).to_wire())));
    }

    replica.sync().unwrap();
    assert_eq!(replica.resyncs(), 1, "compaction must trigger one resync");
    assert_eq!(
        replica.server().handle(&fetch_msg("T")),
        primary.handle(&fetch_msg("T")),
        "post-compaction follower diverged"
    );
}

// --- 3. semi-sync ----------------------------------------------------------

#[test]
fn semi_sync_ack_implies_the_follower_has_the_mutation() {
    let primary_dir = TempDir::new("repl-sync-primary").unwrap();
    let follower_dir = TempDir::new("repl-sync-follower").unwrap();
    let primary = Server::open_durable(primary_dir.path(), 2).unwrap();
    assert!(is_ok(&primary.handle(&create_msg("T").to_wire())));

    // Real TCP follower: pulls ride the same framed transport clients
    // use.
    let handle = NetServer::spawn(primary.clone(), "127.0.0.1:0").unwrap();
    let feed = PooledClient::connect(handle.addr(), 1).unwrap();
    let mut replica = Replica::bootstrap(feed, follower_dir.path(), replica_options(4)).unwrap();
    replica.start();

    primary
        .set_replication(ReplicationOptions {
            min_acks: 1,
            ack_timeout: Duration::from_secs(10),
        })
        .unwrap();

    let follower = replica.server();
    for id in 0..10u64 {
        assert!(is_ok(&primary.handle(&append_msg("T", id).to_wire())));
        // The ack just returned, so the follower must *already* serve
        // the mutation — no sync, no sleep, no retry loop.
        assert_eq!(
            follower.handle(&fetch_msg("T")),
            primary.handle(&fetch_msg("T")),
            "semi-sync acked before the follower had append {id}"
        );
    }
    let log = primary.durable_log().unwrap();
    assert_eq!(
        log.semi_sync_degraded(),
        0,
        "acks degraded under a live follower"
    );
    assert_eq!(log.replication_lag(), 0, "acked yet lagging");

    drop(replica);
    handle.shutdown();
}

#[test]
fn semi_sync_degrades_to_async_when_no_follower_answers() {
    let primary_dir = TempDir::new("repl-degrade").unwrap();
    let primary = Server::open_durable(primary_dir.path(), 1).unwrap();
    assert!(is_ok(&primary.handle(&create_msg("T").to_wire())));

    primary
        .set_replication(ReplicationOptions {
            min_acks: 1,
            ack_timeout: Duration::from_millis(50),
        })
        .unwrap();

    let started = std::time::Instant::now();
    assert!(
        is_ok(&primary.handle(&append_msg("T", 0).to_wire())),
        "a follower-less primary must still ack (degraded), not error"
    );
    let elapsed = started.elapsed();
    assert!(
        elapsed >= Duration::from_millis(45),
        "the ack returned before the semi-sync window: {elapsed:?}"
    );
    assert_eq!(primary.durable_log().unwrap().semi_sync_degraded(), 1);

    // Back to async: the write path is untouched again.
    primary
        .set_replication(ReplicationOptions::default())
        .unwrap();
    let started = std::time::Instant::now();
    assert!(is_ok(&primary.handle(&append_msg("T", 1).to_wire())));
    assert!(started.elapsed() < Duration::from_millis(45));
}

// --- 4. chaos failover -----------------------------------------------------

/// Bootstraps through weather: the chaos proxy can eat the probe dial
/// or any bootstrap pull, so both connect and bootstrap retry.
fn bootstrap_through_chaos(
    proxy_addr: std::net::SocketAddr,
    dir: &std::path::Path,
    follower_id: u64,
) -> Replica {
    for attempt in 0..50 {
        let feed = match PooledClient::connect_with(
            proxy_addr,
            PoolOptions {
                capacity: 1,
                retry: RetryPolicy {
                    max_attempts: 8,
                    base_backoff: Duration::from_millis(1),
                    max_backoff: Duration::from_millis(4),
                    deadline: None,
                    jitter_seed: follower_id,
                },
                io_timeout: Some(Duration::from_secs(5)),
                checkout_timeout: Some(Duration::from_secs(5)),
                client_id: None,
            },
        ) {
            Ok(feed) => feed,
            Err(_) if attempt < 49 => continue,
            Err(e) => panic!("connect through chaos never succeeded: {e}"),
        };
        match Replica::bootstrap(feed, dir, replica_options(follower_id)) {
            Ok(replica) => return replica,
            Err(PhError::Transport(_)) if attempt < 49 => continue,
            Err(e) => panic!("bootstrap through chaos failed hard: {e}"),
        }
    }
    unreachable!()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn kill_mid_batch_promote_redirect_stays_exactly_once(seed in any::<u64>()) {
        let primary_dir = TempDir::new("repl-chaos-primary").unwrap();
        let follower_dir = TempDir::new("repl-chaos-follower").unwrap();

        // Every envelope is pre-tagged with a fixed (client_id, seq),
        // so a re-send after failover is byte-identical — the envelope
        // continuity a real client gets from its pool surviving the
        // redirect.
        let ops: Vec<Vec<u8>> = workload("T")
            .into_iter()
            .enumerate()
            .map(|(i, op)| op.tagged(77, i as u64 + 1).to_wire())
            .collect();
        let split = ops.len() / 2;

        let primary = Server::open_durable(primary_dir.path(), 2).unwrap();
        let handle = NetServer::spawn(primary.clone(), "127.0.0.1:0").unwrap();
        // The replication link runs through seeded chaos: resets, torn
        // frames, swallowed responses, delays.
        let proxy = ChaosProxy::spawn(handle.addr(), seed, ChaosPlan::default()).unwrap();

        let mut replica =
            bootstrap_through_chaos(proxy.addr(), follower_dir.path(), 9);
        replica.start();
        primary
            .set_replication(ReplicationOptions {
                min_acks: 1,
                ack_timeout: Duration::from_secs(3),
            })
            .unwrap();

        let client = PooledClient::connect_with(
            handle.addr(),
            PoolOptions {
                capacity: 2,
                retry: RetryPolicy {
                    max_attempts: 3,
                    base_backoff: Duration::from_millis(1),
                    max_backoff: Duration::from_millis(4),
                    deadline: None,
                    jitter_seed: seed,
                },
                io_timeout: Some(Duration::from_secs(5)),
                checkout_timeout: Some(Duration::from_secs(5)),
                client_id: Some(77),
            },
        )
        .unwrap();

        // Phase 1: the first half acks cleanly (the client path has no
        // proxy; the chaos lives on the replication link).
        for bytes in &ops[..split] {
            let resp = client.call(bytes).expect("direct call failed");
            prop_assert!(is_ok(&resp), "seed {}: acked an error", seed);
        }

        // Phase 2: pipeline the rest and kill the primary mid-batch.
        let tail: Vec<Vec<u8>> = ops[split..].to_vec();
        let batch_client = client.clone();
        let sender = std::thread::spawn(move || batch_client.call_many(&tail));
        std::thread::sleep(Duration::from_millis(seed % 7 + 1));
        handle.sever_connections();
        handle.shutdown();
        // An Err means the kill landed mid-batch: an unknown prefix
        // applied, and exactly-once for those ops is exactly what the
        // re-send below must prove. An Ok means the batch finished
        // first — then every response it returned was a real ack.
        if let Ok(responses) = sender.join().expect("sender panicked") {
            for resp in &responses {
                prop_assert!(is_ok(resp), "seed {}: pipelined ack was an error", seed);
            }
        }
        drop(primary); // release the dir lock: the primary process is gone

        // Phase 3: promote the follower and repoint the client.
        let promoted = replica.promote();
        let new_handle = NetServer::spawn(promoted.clone(), "127.0.0.1:0").unwrap();
        client.redirect(new_handle.addr()).unwrap();

        // Phase 4: a client whose acks may have died with the primary
        // re-sends *everything*, byte-identical. Replayed or fresh,
        // every op must ack Ok — and apply exactly once in total.
        for bytes in &ops {
            let resp = client.call(bytes).expect("re-send after redirect failed");
            prop_assert!(is_ok(&resp), "seed {}: post-failover re-send refused", seed);
        }

        let reference = Server::with_shards(2);
        for op in workload("T") {
            prop_assert!(is_ok(&reference.handle(&op.to_wire())));
        }
        prop_assert_eq!(
            promoted.handle(&fetch_msg("T")),
            reference.handle(&fetch_msg("T")),
            "seed {}: the promoted store is not apply-each-once", seed
        );

        proxy.shutdown();
        new_handle.shutdown();
    }
}
