//! Telemetry is transcript-invisible: the operator stats plane must
//! not change a single byte the adversary model cares about.
//!
//! The registry measures Eve's machine — her fsync latencies, queue
//! depths, socket counters — never Alex's data, and collection happens
//! strictly *beside* the request path. These tests hold the
//! implementation to that:
//!
//! 1. **On/off byte-identity.** For a mutation-and-query workload
//!    across {thread-per-connection, event-loop} front-ends ×
//!    {in-memory, durable group-commit} stores × shard counts, a
//!    session against a telemetry-enabled server produces responses,
//!    `Observer` transcripts, and durable segment/manifest bytes
//!    identical to a telemetry-disabled server's.
//! 2. **Stats is invisible too.** A `Stats` request answers with a
//!    versioned snapshot and records no `ServerEvent`s.
//! 3. **Counters move for the right reasons.** Faults and code paths
//!    that must be operator-visible (envelope replays, stale
//!    envelopes, follower resyncs, client retries/failovers,
//!    event-loop replication refusals, fsync barriers) each move
//!    their counter strictly positive.

use std::time::Duration;

use dbph::core::protocol::{ClientMessage, ServerResponse, WireTrapdoor};
use dbph::core::wire::{WireDecode as _, WireEncode as _};
use dbph::core::{
    DatabasePh, FinalSwpPh, FrontEnd, NetServer, PoolOptions, PooledClient, Replica,
    ReplicaOptions, RetryPolicy, Server, TempDir, Transport, REPL_PULL_EVENT_LOOP_REFUSED,
};
use dbph::crypto::SecretKey;
use dbph::relation::{Query, Relation, Tuple, Value};
use dbph::swp::CipherWord;
use dbph::workload::EmployeeGen;

fn ph() -> FinalSwpPh {
    FinalSwpPh::new(EmployeeGen::schema(), &SecretKey::from_bytes([77u8; 32])).unwrap()
}

fn encrypt(scheme: &FinalSwpPh, q: &Query) -> Vec<WireTrapdoor> {
    let qct = scheme.encrypt_query(q).unwrap();
    qct.terms.iter().map(WireTrapdoor::from_trapdoor).collect()
}

/// A compact mutation-and-query workload serialized once, so every
/// session under comparison consumes identical request bytes: create,
/// repeated queries (the second probe hits the index cache), a batch,
/// appends, a delete, a fetch, and a malformed message for the error
/// path. No `Stats` message — snapshots of two different servers
/// legitimately differ, which is exactly what the byte-identity matrix
/// must not be polluted by.
fn workload_messages() -> Vec<Vec<u8>> {
    let scheme = ph();
    let relation = EmployeeGen {
        rows: 60,
        ..EmployeeGen::default()
    }
    .generate(5);
    let table = scheme.encrypt_table(&relation).unwrap();
    let base_id = relation.len() as u64;

    let extra_row = |name: &str, id: u64| -> (u64, Vec<CipherWord>) {
        let rel = Relation::from_tuples(
            EmployeeGen::schema(),
            vec![Tuple::new(vec![
                Value::str(name),
                Value::str("dept-00"),
                Value::int(7777),
            ])],
        )
        .unwrap();
        let ct = scheme.encrypt_table(&rel).unwrap();
        (id, ct.docs.into_iter().next().unwrap().1)
    };

    let mut msgs: Vec<Vec<u8>> = Vec::new();
    msgs.push(
        ClientMessage::CreateTable {
            name: "Emp".into(),
            table,
        }
        .to_wire(),
    );
    for q in [
        Query::select("dept", "dept-00"),
        Query::select("dept", "dept-00"), // repeat: cached-posting probe
        Query::select("salary", 5500i64),
        Query::select("name", "no-such-emp"),
    ] {
        msgs.push(
            ClientMessage::Query {
                name: "Emp".into(),
                terms: encrypt(&scheme, &q),
            }
            .to_wire(),
        );
    }
    msgs.push(
        ClientMessage::QueryBatch {
            name: "Emp".into(),
            queries: vec![encrypt(&scheme, &Query::select("dept", "dept-01")), vec![]],
        }
        .to_wire(),
    );
    let (id_a, words_a) = extra_row("emp-x", base_id);
    msgs.push(
        ClientMessage::Append {
            name: "Emp".into(),
            doc_id: id_a,
            words: words_a,
        }
        .to_wire(),
    );
    let (id_b, words_b) = extra_row("emp-y", base_id + 1);
    msgs.push(
        ClientMessage::AppendBatch {
            name: "Emp".into(),
            docs: vec![(id_b, words_b)],
        }
        .to_wire(),
    );
    msgs.push(
        ClientMessage::DeleteDocs {
            name: "Emp".into(),
            doc_ids: vec![1, 3, 999_999],
        }
        .to_wire(),
    );
    msgs.push(vec![0xFF, 0x00]);
    msgs.push(ClientMessage::FetchAll { name: "Emp".into() }.to_wire());
    msgs
}

/// The durable directory's on-disk image — every file's name and exact
/// bytes, except the advisory `LOCK` (its content is process-specific
/// and carries no durable state).
fn dir_image(dir: &std::path::Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap())
        .filter(|e| e.file_name() != "LOCK")
        .map(|e| {
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read(e.path()).unwrap(),
            )
        })
        .collect();
    files.sort();
    files
}

/// Everything the adversary model can see from one session: response
/// bytes, the `Observer` transcript, and the durable directory image.
type AdversaryView = (
    Vec<Vec<u8>>,
    Vec<dbph::core::server::ServerEvent>,
    Vec<(String, Vec<u8>)>,
);

/// One full TCP session for a matrix cell: build the server (durable
/// or in-memory), flip telemetry, serve under `front_end`, replay the
/// workload through a retrying pool with a pinned envelope identity
/// (so tagged request bytes are deterministic), and collect everything
/// the adversary model can see.
fn run_session(
    front_end: FrontEnd,
    durable: bool,
    shards: usize,
    telemetry_on: bool,
    messages: &[Vec<u8>],
) -> AdversaryView {
    let tmp = durable.then(|| {
        TempDir::new(&format!(
            "tele-{front_end:?}-{shards}-{}",
            if telemetry_on { "on" } else { "off" }
        ))
        .unwrap()
    });
    let server = match &tmp {
        Some(tmp) => Server::open_durable(tmp.path(), shards).unwrap(),
        None => Server::with_shards(shards),
    };
    server.telemetry().set_enabled(telemetry_on);

    let handle = NetServer::spawn_with(server.clone(), "127.0.0.1:0", front_end).unwrap();
    let pool = PooledClient::connect_with(
        handle.addr(),
        PoolOptions {
            capacity: 2,
            retry: RetryPolicy {
                max_attempts: 3,
                ..RetryPolicy::default()
            },
            client_id: Some(7),
            ..PoolOptions::default()
        },
    )
    .unwrap();

    let responses: Vec<Vec<u8>> = messages
        .iter()
        .map(|m| pool.call(m).expect("session call"))
        .collect();
    let events = server.observer().events();
    handle.shutdown();
    drop(pool);
    drop(server); // release the durable log before reading the dir
    let image = tmp
        .as_ref()
        .map(|t| dir_image(t.path()))
        .unwrap_or_default();
    (responses, events, image)
}

#[test]
fn telemetry_on_off_is_byte_identical_across_the_matrix() {
    let messages = workload_messages();
    for front_end in [FrontEnd::ThreadPerConnection, FrontEnd::EventLoop] {
        for durable in [false, true] {
            for shards in [1usize, 3] {
                let (on_resp, on_events, on_image) =
                    run_session(front_end, durable, shards, true, &messages);
                let (off_resp, off_events, off_image) =
                    run_session(front_end, durable, shards, false, &messages);
                let cell = format!("{front_end:?} durable={durable} shards={shards}");
                assert_eq!(on_resp, off_resp, "responses diverged at {cell}");
                assert_eq!(on_events, off_events, "transcripts diverged at {cell}");
                assert_eq!(on_image, off_image, "durable bytes diverged at {cell}");
            }
        }
    }
}

#[test]
fn stats_request_returns_a_snapshot_and_records_no_events() {
    let server = Server::with_shards(2);
    // Put something in the transcript first so "no new events" is a
    // real claim, not an empty-vs-empty accident.
    let _ = server.handle(&ClientMessage::FetchAll { name: "t".into() }.to_wire());
    let before = server.observer().events();

    let response = server.handle(&ClientMessage::Stats.to_wire());
    let snapshot = match ServerResponse::from_wire(&response).unwrap() {
        ServerResponse::StatsSnapshot(s) => s,
        other => panic!("expected StatsSnapshot, got {other:?}"),
    };
    assert_eq!(snapshot.version, dbph::core::telemetry::STATS_VERSION);
    assert!(
        snapshot.scalar("dedup_fresh").is_some(),
        "snapshot must carry the registry"
    );
    assert!(
        snapshot.scalar("exec_workers").unwrap_or(0) > 0,
        "snapshot must sample the executor plane"
    );
    assert_eq!(
        server.observer().events(),
        before,
        "Stats must record no ServerEvents"
    );
    // The probe itself is timed — on the operator's own histogram.
    assert!(server.telemetry().request_latency(13).count() > 0);
}

#[test]
fn dedup_counters_classify_fresh_replayed_and_stale_envelopes() {
    let server = Server::with_shards(1);
    let scheme = ph();
    let table = scheme
        .encrypt_table(
            &EmployeeGen {
                rows: 2,
                ..EmployeeGen::default()
            }
            .generate(1),
        )
        .unwrap();
    let create = ClientMessage::CreateTable {
        name: "Emp".into(),
        table,
    };
    let enveloped = create.clone().tagged(9, 1).to_wire();
    let first = server.handle(&enveloped);
    let replayed = server.handle(&enveloped);
    assert_eq!(first, replayed, "replay must return the cached response");

    // Seqs start at 1; 0 is below every window watermark, i.e. stale.
    let stale = server.handle(&create.tagged(9, 0).to_wire());
    assert!(matches!(
        ServerResponse::from_wire(&stale).unwrap(),
        ServerResponse::Error(_)
    ));

    let t = server.telemetry();
    assert_eq!(t.dedup_fresh.get(), 1);
    assert_eq!(t.dedup_replays.get(), 1);
    assert_eq!(t.dedup_stale.get(), 1);
}

#[test]
fn query_plan_and_index_counters_move() {
    let server = Server::with_shards(2);
    // The default planner scans; count those first, then flip the
    // index on and watch the probe-side counters move too.
    server.enable_index();
    let scheme = ph();
    let relation = EmployeeGen {
        rows: 40,
        ..EmployeeGen::default()
    }
    .generate(2);
    let table = scheme.encrypt_table(&relation).unwrap();
    assert!(!matches!(
        ServerResponse::from_wire(
            &server.handle(
                &ClientMessage::CreateTable {
                    name: "Emp".into(),
                    table
                }
                .to_wire()
            )
        )
        .unwrap(),
        ServerResponse::Error(_)
    ));
    let query = ClientMessage::Query {
        name: "Emp".into(),
        terms: encrypt(&scheme, &Query::select("dept", "dept-00")),
    }
    .to_wire();
    let a = server.handle(&query);
    let b = server.handle(&query); // second probe rides the cached posting
    assert_eq!(a, b);

    let t = server.telemetry();
    assert!(
        t.plan_probe_queries.get() + t.plan_scan_queries.get() >= 2,
        "every query must pick a plan"
    );
    assert!(t.index_probe_hits.get() + t.index_probe_misses.get() > 0);
    assert!(t.index_posting_len.count() > 0);
    assert!(t.request_latency(2).count() >= 2, "query latency histogram");
}

#[test]
fn durable_ingest_moves_fsync_and_commit_metrics() {
    let tmp = TempDir::new("tele-durable").unwrap();
    let server = Server::open_durable(tmp.path(), 2).unwrap();
    let scheme = ph();
    let table = scheme
        .encrypt_table(
            &EmployeeGen {
                rows: 4,
                ..EmployeeGen::default()
            }
            .generate(3),
        )
        .unwrap();
    let _ = server.handle(
        &ClientMessage::CreateTable {
            name: "Emp".into(),
            table,
        }
        .to_wire(),
    );
    let _ = server.handle(
        &ClientMessage::DeleteDocs {
            name: "Emp".into(),
            doc_ids: vec![0],
        }
        .to_wire(),
    );

    let t = server.telemetry();
    assert!(t.fsync_nanos.count() > 0, "fsyncs must be timed");
    assert!(
        t.commit_window_records.count() > 0,
        "each barrier must record its window occupancy"
    );
    let snapshot = server.stats_snapshot();
    assert!(snapshot.scalar("log_syncs").unwrap_or(0) > 0);
    assert_eq!(snapshot.scalar("log_poisoned"), Some(0));
}

#[test]
fn follower_resync_and_chunk_counters_move() {
    let primary_dir = TempDir::new("tele-repl-primary").unwrap();
    let follower_dir = TempDir::new("tele-repl-follower").unwrap();
    let primary = Server::open_durable(primary_dir.path(), 2).unwrap();
    let scheme = ph();
    let table = scheme
        .encrypt_table(
            &EmployeeGen {
                rows: 2,
                ..EmployeeGen::default()
            }
            .generate(4),
        )
        .unwrap();
    let create = ClientMessage::CreateTable {
        name: "Emp".into(),
        table,
    }
    .to_wire();
    assert!(!matches!(
        ServerResponse::from_wire(&primary.handle(&create)).unwrap(),
        ServerResponse::Error(_)
    ));

    let replica = Replica::bootstrap(
        primary.clone(),
        follower_dir.path(),
        ReplicaOptions {
            follower_id: 21,
            shards: 2,
            poll_interval: Duration::from_millis(1),
            ..ReplicaOptions::default()
        },
    )
    .unwrap();
    replica.sync().unwrap();

    // New records first, then a compaction that moves the stream base
    // past the follower's cursor: the next sync must re-bootstrap.
    let delete = ClientMessage::DeleteDocs {
        name: "Emp".into(),
        doc_ids: vec![0],
    }
    .to_wire();
    let _ = primary.handle(&delete);
    replica.sync().unwrap();
    primary.compact().unwrap();
    let _ = primary.handle(&delete);
    replica.sync().unwrap();

    assert!(replica.resyncs() > 0, "compaction must force a resync");
    let follower_t = replica.server().telemetry().clone();
    assert!(
        follower_t.repl_resyncs.get() > 0,
        "resyncs must be operator-visible on the follower registry"
    );
    assert!(
        primary.telemetry().repl_chunks_shipped.get() > 0,
        "the primary must count shipped chunks"
    );
    // Status carries the counter too — the failover plane's view.
    match ServerResponse::from_wire(&replica.server().handle(&ClientMessage::Ping.to_wire()))
        .unwrap()
    {
        ServerResponse::Status { resyncs, .. } => assert!(resyncs > 0),
        other => panic!("expected Status, got {other:?}"),
    }
}

#[test]
fn client_retry_and_failover_counters_move() {
    let server = Server::with_shards(1);
    let handle = NetServer::spawn(server, "127.0.0.1:0").unwrap();
    let addr = handle.addr();
    let pool = PooledClient::connect_with(
        addr,
        PoolOptions {
            capacity: 1,
            retry: RetryPolicy {
                max_attempts: 3,
                ..RetryPolicy::default()
            },
            ..PoolOptions::default()
        },
    )
    .unwrap();
    handle.shutdown();

    // Nothing listens any more: every attempt is connection-refused
    // (which skips backoff), so the budget burns fast and each retry
    // is counted.
    let err = pool
        .call(&ClientMessage::Ping.to_wire())
        .expect_err("server is gone");
    let _ = err;
    assert!(
        pool.telemetry().client_retries.get() >= 2,
        "both follow-up attempts must be counted"
    );

    pool.redirect(addr).unwrap();
    assert_eq!(pool.telemetry().client_failovers.get(), 1);
}

#[test]
fn event_loop_refuses_repl_pull_but_thread_front_end_serves_it() {
    let pull = ClientMessage::ReplPull {
        follower: 5,
        after_offset: 0,
    }
    .to_wire();

    // Event loop: refusal, documented error text, counter moves.
    let tmp = TempDir::new("tele-refuse-el").unwrap();
    let server = Server::open_durable(tmp.path(), 1).unwrap();
    let handle = NetServer::spawn_with(server.clone(), "127.0.0.1:0", FrontEnd::EventLoop).unwrap();
    let pool = PooledClient::connect(handle.addr(), 1).unwrap();
    match ServerResponse::from_wire(&pool.call(&pull).unwrap()).unwrap() {
        ServerResponse::Error(e) => assert!(
            e.contains(REPL_PULL_EVENT_LOOP_REFUSED),
            "refusal must carry the documented text, got: {e}"
        ),
        other => panic!("expected the documented refusal, got {other:?}"),
    }
    assert_eq!(server.telemetry().net_repl_pull_refused.get(), 1);
    handle.shutdown();

    // Thread-per-connection: the same pull is served (a parked thread
    // is that front-end's design, not a liveness hazard).
    let tmp = TempDir::new("tele-refuse-tpc").unwrap();
    let server = Server::open_durable(tmp.path(), 1).unwrap();
    let handle =
        NetServer::spawn_with(server.clone(), "127.0.0.1:0", FrontEnd::ThreadPerConnection)
            .unwrap();
    let pool = PooledClient::connect(handle.addr(), 1).unwrap();
    if let ServerResponse::Error(e) = ServerResponse::from_wire(&pool.call(&pull).unwrap()).unwrap()
    {
        panic!("thread front-end must serve ReplPull, got: {e}");
    }
    assert_eq!(server.telemetry().net_repl_pull_refused.get(), 0);
    handle.shutdown();
}

#[test]
fn stats_snapshot_travels_the_wire_with_net_counters_sampled() {
    let server = Server::with_shards(2);
    let handle = NetServer::spawn(server.clone(), "127.0.0.1:0").unwrap();
    let pool = PooledClient::connect(handle.addr(), 1).unwrap();
    let _ = pool
        .call(&ClientMessage::FetchAll { name: "t".into() }.to_wire())
        .unwrap();
    let snapshot =
        match ServerResponse::from_wire(&pool.call(&ClientMessage::Stats.to_wire()).unwrap())
            .unwrap()
        {
            ServerResponse::StatsSnapshot(s) => s,
            other => panic!("expected StatsSnapshot, got {other:?}"),
        };
    assert!(snapshot.scalar("net_conns_accepted").unwrap_or(0) >= 1);
    assert!(
        snapshot.scalar("net_frames_in").unwrap_or(0) >= 2,
        "the fetch and the stats request both crossed the wire"
    );
    assert!(snapshot.scalar("net_bytes_out").unwrap_or(0) > 0);
    // The text exposition renders every metric in the snapshot.
    let text = snapshot.to_string();
    for (name, _) in &snapshot.metrics {
        assert!(text.contains(name.as_str()), "exposition missing {name}");
    }
    handle.shutdown();
}

#[test]
fn disabling_telemetry_freezes_collection() {
    let server = Server::with_shards(1);
    let _ = server.handle(&ClientMessage::Ping.to_wire());
    let t = server.telemetry();
    let pings_before = t.request_latency(11).count();
    assert!(pings_before > 0);
    t.set_enabled(false);
    let _ = server.handle(&ClientMessage::Ping.to_wire());
    assert_eq!(
        t.request_latency(11).count(),
        pings_before,
        "a disabled registry must not collect"
    );
    t.set_enabled(true);
    let _ = server.handle(&ClientMessage::Ping.to_wire());
    assert_eq!(t.request_latency(11).count(), pings_before + 1);
}
