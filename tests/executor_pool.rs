//! Wire-order regression tests for the persistent worker pool.
//!
//! The pool completes `(query, shard)` tasks in whatever order its
//! workers get to them; the engine must still hand results back in
//! submission order, and a `QueryBatch` response must list result
//! tables in wire (query) order. These tests force out-of-order and
//! randomized completion on purpose and check nothing reorders.

use std::time::Duration;

use dbph::core::executor::Executor;
use dbph::core::protocol::{ClientMessage, WireTrapdoor};
use dbph::core::wire::WireEncode;
use dbph::core::{DatabasePh, FinalSwpPh, Server};
use dbph::crypto::SecretKey;
use dbph::relation::Query;
use dbph::workload::EmployeeGen;

/// Deterministic pseudo-random delay per task index (xorshift).
fn jitter_ms(index: u64, round: u64) -> u64 {
    let mut state = (index + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ round;
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    state % 12
}

#[test]
fn randomized_completion_preserves_submission_order() {
    let pool = Executor::new(4);
    for round in 0..4u64 {
        let results = pool.scatter(
            (0..24u64)
                .map(|i| {
                    move || {
                        std::thread::sleep(Duration::from_millis(jitter_ms(i, round)));
                        i
                    }
                })
                .collect(),
        );
        assert_eq!(
            results,
            (0..24).collect::<Vec<u64>>(),
            "randomized completion reordered results in round {round}"
        );
    }
}

#[test]
fn reverse_completion_preserves_submission_order() {
    // The adversarial schedule: the first-submitted task finishes
    // last, every later task earlier.
    let pool = Executor::new(8);
    let results = pool.scatter(
        (0..16u64)
            .map(|i| {
                move || {
                    std::thread::sleep(Duration::from_millis((16 - i) * 2));
                    i * 7
                }
            })
            .collect(),
    );
    assert_eq!(results, (0..16).map(|i| i * 7).collect::<Vec<u64>>());
}

#[test]
fn batch_responses_stay_in_wire_order_under_pooled_execution() {
    // 600 rows clears the engine's inline threshold, so a multi-worker
    // server genuinely schedules K×S tasks on the pool. Queries have
    // wildly different costs/selectivities (match-everything vs.
    // match-nothing), so completion order differs from wire order; the
    // raw response bytes must not.
    let relation = EmployeeGen {
        rows: 600,
        ..EmployeeGen::default()
    }
    .generate(11);
    let scheme = FinalSwpPh::new(EmployeeGen::schema(), &SecretKey::from_bytes([9u8; 32])).unwrap();
    let table = scheme.encrypt_table(&relation).unwrap();
    let queries = [
        Query::select("dept", "dept-00"),
        Query::select("name", "no-such-emp"),
        Query::select("dept", "dept-00"), // duplicate: exercises the memo
        Query::select("salary", 5500i64),
        Query::select("dept", "dept-05"),
        Query::select("name", "emp-0000001"),
    ];
    let encrypted: Vec<Vec<WireTrapdoor>> = queries
        .iter()
        .map(|q| {
            let qct = scheme.encrypt_query(q).unwrap();
            qct.terms.iter().map(WireTrapdoor::from_trapdoor).collect()
        })
        .collect();

    let drive = |server: &Server| -> Vec<Vec<u8>> {
        vec![
            server.handle(
                &ClientMessage::CreateTable {
                    name: "Emp".into(),
                    table: table.clone(),
                }
                .to_wire(),
            ),
            server.handle(
                &ClientMessage::QueryBatch {
                    name: "Emp".into(),
                    queries: encrypted.clone(),
                }
                .to_wire(),
            ),
        ]
    };

    // 1-worker pool = sequential reference engine.
    let reference = Server::with_pool(4, 1);
    let reference_responses = drive(&reference);
    for workers in [2, 4, 8] {
        let pooled = Server::with_pool(4, workers);
        assert_eq!(pooled.pool_workers(), workers);
        let responses = drive(&pooled);
        assert_eq!(
            responses, reference_responses,
            "wire responses diverged with {workers} pool workers"
        );
        assert_eq!(
            pooled.observer().events(),
            reference.observer().events(),
            "observer transcript diverged with {workers} pool workers"
        );
    }
}
