//! Transport equivalence: the TCP path must be observationally
//! identical to the in-process path.
//!
//! The paper's adversary sits on the server and sees (a) the bytes
//! Alex sends, (b) the bytes Eve returns, and (c) everything the
//! server computes in between (the `Observer` transcript). Moving
//! those bytes through a real socket therefore must change *nothing*
//! she can record — the obligation these tests enforce:
//!
//! 1. **Byte-identical responses.** For the full workload matrix of
//!    `tests/sharding.rs` (creates, queries, batches with duplicate
//!    terms, appends, batched appends, deletes, fetches, malformed
//!    messages, unknown tables), every response received over loopback
//!    TCP equals, byte for byte, the response the same message gets
//!    from `Server::handle` in-process — across shard counts *and*
//!    worker-pool sizes.
//! 2. **Byte-identical transcripts.** The `Observer` event list after
//!    a TCP session equals the in-process one exactly. The transport
//!    sits above `handle`, so it cannot add, drop, reorder, or tag
//!    events.
//! 3. **Concurrency discipline.** Eight client threads multiplexed
//!    over a two-connection pool, firing pipelined batches, each see
//!    only their own session's responses, in order, and the server
//!    shuts down cleanly afterwards (accept loop and every connection
//!    thread joined — a leak hangs the test, which CI runs under a
//!    timeout).
//! 4. **Randomized equivalence.** A proptest mixes appends, queries,
//!    batched queries, batched appends, and deletes into arbitrary
//!    sessions and replays each against both transports.

use dbph::core::protocol::{ClientMessage, ServerResponse, WireTrapdoor};
use dbph::core::{DatabasePh, FinalSwpPh, NetServer, PooledClient, Server, Transport};
use dbph::crypto::SecretKey;
use dbph::relation::{Query, Relation, Tuple, Value};
use dbph::swp::{CipherWord, SwpParams};
use dbph::workload::EmployeeGen;

use proptest::prelude::*;

fn ph() -> FinalSwpPh {
    FinalSwpPh::new(EmployeeGen::schema(), &SecretKey::from_bytes([77u8; 32])).unwrap()
}

fn encrypt(scheme: &FinalSwpPh, q: &Query) -> Vec<WireTrapdoor> {
    let qct = scheme.encrypt_query(q).unwrap();
    qct.terms.iter().map(WireTrapdoor::from_trapdoor).collect()
}

/// The full workload of `tests/sharding.rs`, serialized once so the
/// in-process and TCP sessions consume *identical* request bytes:
/// create, single queries, a batch with duplicate terms and an empty
/// conjunction, an empty batch, appends (single + batch), deletes
/// (with duplicates and a missing id), fetch-all — plus a malformed
/// message and an unknown-table query to pin the error paths.
fn workload_messages(relation: &Relation) -> Vec<Vec<u8>> {
    use dbph::core::wire::WireEncode as _;
    let scheme = ph();
    let table = scheme.encrypt_table(relation).unwrap();
    let base_id = relation.len() as u64;

    let extra_rows = |names: &[&str]| -> Vec<(u64, Vec<CipherWord>)> {
        let rel = Relation::from_tuples(
            EmployeeGen::schema(),
            names
                .iter()
                .map(|n| {
                    Tuple::new(vec![
                        Value::str(*n),
                        Value::str("dept-00"),
                        Value::int(7777),
                    ])
                })
                .collect(),
        )
        .unwrap();
        let mut ct = scheme.encrypt_table(&rel).unwrap();
        for (i, doc) in ct.docs.iter_mut().enumerate() {
            doc.0 = base_id + i as u64;
        }
        ct.docs
    };

    let mut msgs: Vec<Vec<u8>> = Vec::new();
    msgs.push(
        ClientMessage::CreateTable {
            name: "Emp".into(),
            table,
        }
        .to_wire(),
    );
    for q in [
        Query::select("dept", "dept-00"),
        Query::select("dept", "dept-03"),
        Query::select("salary", 5500i64),
        Query::select("name", "emp-0000042"),
        Query::select("name", "no-such-emp"),
    ] {
        msgs.push(
            ClientMessage::Query {
                name: "Emp".into(),
                terms: encrypt(&scheme, &q),
            }
            .to_wire(),
        );
    }
    // Batch with duplicates, an empty conjunction, and a miss.
    msgs.push(
        ClientMessage::QueryBatch {
            name: "Emp".into(),
            queries: vec![
                encrypt(&scheme, &Query::select("dept", "dept-00")),
                encrypt(&scheme, &Query::select("name", "no-such-emp")),
                encrypt(&scheme, &Query::select("dept", "dept-00")),
                vec![],
                encrypt(&scheme, &Query::select("salary", 5500i64)),
            ],
        }
        .to_wire(),
    );
    // Empty batch.
    msgs.push(
        ClientMessage::QueryBatch {
            name: "Emp".into(),
            queries: vec![],
        }
        .to_wire(),
    );
    // Mutations: one single append, one batch of three, then deletes
    // with duplicates and a missing id.
    let mut docs = extra_rows(&["emp-x", "emp-y", "emp-z", "emp-w"]);
    let (first_id, first_words) = docs.remove(0);
    msgs.push(
        ClientMessage::Append {
            name: "Emp".into(),
            doc_id: first_id,
            words: first_words,
        }
        .to_wire(),
    );
    msgs.push(
        ClientMessage::AppendBatch {
            name: "Emp".into(),
            docs,
        }
        .to_wire(),
    );
    msgs.push(
        ClientMessage::DeleteDocs {
            name: "Emp".into(),
            doc_ids: vec![1, 3, 3, 999_999],
        }
        .to_wire(),
    );
    // Error paths: malformed bytes and an unknown table.
    msgs.push(vec![0xFF, 0x00]);
    msgs.push(
        ClientMessage::Query {
            name: "NoSuchTable".into(),
            terms: vec![],
        }
        .to_wire(),
    );
    msgs.push(ClientMessage::FetchAll { name: "Emp".into() }.to_wire());
    msgs
}

/// Replays `messages` through any transport, returning every raw
/// response.
fn replay<T: Transport>(transport: &T, messages: &[Vec<u8>]) -> Vec<Vec<u8>> {
    messages
        .iter()
        .map(|m| transport.call(m).expect("transport call"))
        .collect()
}

#[test]
fn tcp_responses_and_transcripts_equal_in_process_across_matrix() {
    let relation = EmployeeGen {
        rows: 300,
        ..EmployeeGen::default()
    }
    .generate(9);
    let messages = workload_messages(&relation);

    for shards in [1usize, 2, 4, 8] {
        for workers in [1usize, 4] {
            let local = Server::with_pool(shards, workers);
            let local_responses = replay(&local, &messages);
            let local_events = local.observer().events();

            let remote = Server::with_pool(shards, workers);
            let handle = NetServer::spawn(remote.clone(), "127.0.0.1:0").unwrap();
            let pool = PooledClient::connect(handle.addr(), 2).unwrap();
            let tcp_responses = replay(&pool, &messages);

            assert_eq!(
                tcp_responses, local_responses,
                "TCP responses diverged from in-process at {shards} shard(s) × {workers} worker(s)"
            );
            assert_eq!(
                remote.observer().events(),
                local_events,
                "TCP transcript diverged from in-process at {shards} shard(s) × {workers} worker(s)"
            );
            handle.shutdown();
        }
    }
}

#[test]
fn pipelined_replay_is_byte_identical_too() {
    // The same workload pushed through call_many — every frame
    // streamed before the first read — must still produce the same
    // bytes in the same order.
    let relation = EmployeeGen {
        rows: 150,
        ..EmployeeGen::default()
    }
    .generate(3);
    let messages = workload_messages(&relation);

    let local = Server::with_shards(4);
    let local_responses = replay(&local, &messages);

    let remote = Server::with_shards(4);
    let handle = NetServer::spawn(remote.clone(), "127.0.0.1:0").unwrap();
    let pool = PooledClient::connect(handle.addr(), 1).unwrap();
    let tcp_responses = pool.call_many(&messages).unwrap();

    assert_eq!(tcp_responses, local_responses);
    assert_eq!(remote.observer().events(), local.observer().events());
    // The whole pipeline crossed exactly one connection.
    assert_eq!(handle.connections_accepted(), 1);
    handle.shutdown();
}

#[test]
fn crypto_client_sessions_agree_across_transports() {
    // End-to-end through the key-holding client: decrypted results
    // over TCP equal decrypted results in-process.
    let relation = EmployeeGen {
        rows: 120,
        ..EmployeeGen::default()
    }
    .generate(2);
    let queries = [
        Query::select("dept", "dept-00"),
        Query::select("salary", 5500i64),
        Query::select("name", "no-such-emp"),
    ];

    let local_server = Server::with_shards(4);
    let mut local = dbph::core::Client::new(ph(), local_server);
    local.outsource(&relation).unwrap();
    let local_results = local.select_many(&queries).unwrap();

    let remote_server = Server::with_shards(4);
    let handle = NetServer::spawn(remote_server, "127.0.0.1:0").unwrap();
    let pool = PooledClient::connect(handle.addr(), 2).unwrap();
    let mut remote = dbph::core::Client::new(ph(), pool);
    remote.outsource(&relation).unwrap();
    let remote_results = remote.select_many(&queries).unwrap();

    assert_eq!(local_results.len(), remote_results.len());
    for (a, b) in local_results.iter().zip(&remote_results) {
        assert!(a.same_multiset(b), "decrypted results diverged over TCP");
    }
    // Mutations flow too: insert over TCP, then read it back.
    remote
        .insert(&Tuple::new(vec![
            Value::str("emp-net"),
            Value::str("dept-00"),
            Value::int(1234i64),
        ]))
        .unwrap();
    let found = remote.select(&Query::select("name", "emp-net")).unwrap();
    assert_eq!(found.len(), 1);
    handle.shutdown();
}

// --- concurrency stress ----------------------------------------------------

fn tiny_table(n: usize) -> dbph::core::EncryptedTable {
    dbph::core::EncryptedTable {
        params: SwpParams::new(13, 4, 32).unwrap(),
        docs: (0..n as u64)
            .map(|i| (i, vec![CipherWord(vec![i as u8; 13])]))
            .collect(),
        next_doc_id: n as u64,
    }
}

#[test]
fn stress_eight_sessions_over_two_connections() {
    use dbph::core::wire::{WireDecode as _, WireEncode as _};

    const SESSIONS: usize = 8;
    const ROUNDS: usize = 20;

    let server = Server::with_shards(4);
    let handle = NetServer::spawn(server.clone(), "127.0.0.1:0").unwrap();
    let pool = PooledClient::connect(handle.addr(), 2).unwrap();

    let threads: Vec<_> = (0..SESSIONS)
        .map(|i| {
            let pool = pool.clone();
            std::thread::spawn(move || {
                // Session i owns table "t{i}" with i+1 documents, so
                // any cross-session frame bleed is immediately visible
                // as a wrong document count or wrong response variant.
                let docs = i + 1;
                let create = ClientMessage::CreateTable {
                    name: format!("t{i}"),
                    table: tiny_table(docs),
                }
                .to_wire();
                let resp = pool.call(&create).unwrap();
                assert_eq!(
                    ServerResponse::from_wire(&resp).unwrap(),
                    ServerResponse::Ok
                );

                let fetch = ClientMessage::FetchAll {
                    name: format!("t{i}"),
                }
                .to_wire();
                let query = ClientMessage::Query {
                    name: format!("t{i}"),
                    terms: vec![], // empty conjunction: all docs
                }
                .to_wire();
                let noop_delete = ClientMessage::DeleteDocs {
                    name: format!("t{i}"),
                    doc_ids: vec![],
                }
                .to_wire();

                for _ in 0..ROUNDS {
                    // Pipelined, type-alternating batch: the response
                    // *variants* pin per-session ordering (Table, Ok,
                    // Table) and the doc ids pin session identity.
                    let responses = pool
                        .call_many(&[fetch.clone(), noop_delete.clone(), query.clone()])
                        .unwrap();
                    assert_eq!(responses.len(), 3);
                    match ServerResponse::from_wire(&responses[0]).unwrap() {
                        ServerResponse::Table(t) => {
                            assert_eq!(
                                t.doc_ids(),
                                (0..docs as u64).collect::<Vec<_>>(),
                                "session {i} read another session's table"
                            );
                        }
                        other => panic!("slot 0 of session {i}: unexpected {other:?}"),
                    }
                    assert_eq!(
                        ServerResponse::from_wire(&responses[1]).unwrap(),
                        ServerResponse::Ok,
                        "slot 1 of session {i} out of order"
                    );
                    match ServerResponse::from_wire(&responses[2]).unwrap() {
                        ServerResponse::Table(t) => assert_eq!(t.len(), docs),
                        other => panic!("slot 2 of session {i}: unexpected {other:?}"),
                    }
                }
            })
        })
        .collect();

    for t in threads {
        t.join().expect("stress session panicked");
    }

    // The pool really was the bottleneck: eight sessions, two sockets,
    // and no call ever failed — so no reconnect ever dialed a third.
    assert_eq!(pool.open_connections(), 2);
    assert_eq!(handle.connections_accepted(), 2);

    // Every session's uploads arrived: one Upload event per table.
    let uploads = server
        .observer()
        .events()
        .iter()
        .filter(|e| matches!(e, dbph::core::server::ServerEvent::Upload { .. }))
        .count();
    assert_eq!(uploads, SESSIONS);

    // Clean shutdown: accept loop and both connection threads join.
    // A deadlocked accept loop or leaked worker hangs here, and CI
    // runs this suite under a hard timeout to surface exactly that.
    handle.shutdown();
}

// --- randomized session equivalence ----------------------------------------

/// An abstract operation; the proptest lowers a `Vec<SessionOp>` into
/// concrete protocol bytes (with valid, monotonically fresh doc ids
/// for the append family) and replays them on both transports.
#[derive(Clone, Debug)]
enum SessionOp {
    Query(u8),
    QueryBatch(Vec<u8>),
    Append,
    AppendBatch(u8),
    Delete(Vec<u8>),
    FetchAll,
}

fn arb_op() -> impl Strategy<Value = SessionOp> {
    prop_oneof![
        (0u8..4).prop_map(SessionOp::Query),
        proptest::collection::vec(0u8..4, 0..5).prop_map(SessionOp::QueryBatch),
        Just(SessionOp::Append),
        (1u8..4).prop_map(SessionOp::AppendBatch),
        proptest::collection::vec(0u8..12, 0..4).prop_map(SessionOp::Delete),
        Just(SessionOp::FetchAll),
    ]
}

fn lower_ops(relation: &Relation, ops: &[SessionOp]) -> Vec<Vec<u8>> {
    use dbph::core::wire::WireEncode as _;
    let scheme = ph();
    let table = scheme.encrypt_table(relation).unwrap();
    let mut next_id = table.next_doc_id;
    let probes = [
        Query::select("dept", "dept-00"),
        Query::select("dept", "dept-02"),
        Query::select("salary", 5500i64),
        Query::select("name", "no-such-emp"),
    ];
    let fresh_docs = |next_id: &mut u64, n: usize| -> Vec<(u64, Vec<CipherWord>)> {
        let rel = Relation::from_tuples(
            EmployeeGen::schema(),
            (0..n)
                .map(|k| {
                    Tuple::new(vec![
                        Value::str(format!("fresh-{k}")),
                        Value::str("dept-00"),
                        Value::int(1000),
                    ])
                })
                .collect(),
        )
        .unwrap();
        let ct = scheme.encrypt_table(&rel).unwrap();
        ct.docs
            .into_iter()
            .map(|(_, words)| {
                let id = *next_id;
                *next_id += 1;
                (id, words)
            })
            .collect()
    };

    let mut msgs = vec![ClientMessage::CreateTable {
        name: "Emp".into(),
        table,
    }
    .to_wire()];
    for op in ops {
        let msg = match op {
            SessionOp::Query(p) => ClientMessage::Query {
                name: "Emp".into(),
                terms: encrypt(&scheme, &probes[*p as usize]),
            },
            SessionOp::QueryBatch(picks) => ClientMessage::QueryBatch {
                name: "Emp".into(),
                queries: picks
                    .iter()
                    .map(|p| encrypt(&scheme, &probes[*p as usize]))
                    .collect(),
            },
            SessionOp::Append => {
                let mut docs = fresh_docs(&mut next_id, 1);
                let (doc_id, words) = docs.pop().unwrap();
                ClientMessage::Append {
                    name: "Emp".into(),
                    doc_id,
                    words,
                }
            }
            SessionOp::AppendBatch(n) => ClientMessage::AppendBatch {
                name: "Emp".into(),
                docs: fresh_docs(&mut next_id, *n as usize),
            },
            SessionOp::Delete(ids) => ClientMessage::DeleteDocs {
                name: "Emp".into(),
                doc_ids: ids.iter().map(|&i| u64::from(i)).collect(),
            },
            SessionOp::FetchAll => ClientMessage::FetchAll { name: "Emp".into() },
        };
        msgs.push(msg.to_wire());
    }
    msgs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn random_sessions_are_transport_invariant(
        rows in 1usize..60,
        ops in proptest::collection::vec(arb_op(), 0..10),
        pool_size in 1usize..3,
    ) {
        let relation = EmployeeGen { rows, ..EmployeeGen::default() }.generate(rows as u64);
        let messages = lower_ops(&relation, &ops);

        let local = Server::with_shards(3);
        let local_responses = replay(&local, &messages);

        let remote = Server::with_shards(3);
        let handle = NetServer::spawn(remote.clone(), "127.0.0.1:0").unwrap();
        let pool = PooledClient::connect(handle.addr(), pool_size).unwrap();
        let tcp_responses = replay(&pool, &messages);

        prop_assert_eq!(tcp_responses, local_responses,
            "TCP responses diverged for ops {:?}", &ops);
        prop_assert_eq!(remote.observer().events(), local.observer().events(),
            "TCP transcript diverged for ops {:?}", &ops);
        handle.shutdown();
    }
}
