//! Cross-scheme conformance: every `DatabasePh` in the workspace obeys
//! Definition 1.1's homomorphism law on the same workloads.

use dbph::baselines::{BucketConfig, BucketizationPh, DamianiPh, DeterministicPh, PlaintextPh};
use dbph::core::ph::check_homomorphism_law;
use dbph::core::{DatabasePh, FinalSwpPh, VarlenPh};
use dbph::crypto::SecretKey;
use dbph::relation::schema::{emp_schema, hospital_schema};
use dbph::relation::{ExactSelect, Query, Relation, Value};
use dbph::workload::{EmployeeGen, HospitalConfig};

fn key() -> SecretKey {
    SecretKey::from_bytes([123u8; 32])
}

fn emp_queries() -> Vec<Query> {
    vec![
        Query::select("name", "emp-0000001"),
        Query::select("dept", "dept-00"),
        Query::select("dept", "dept-03"),
        Query::select("salary", 1000i64),
        Query::select("salary", -1i64), // empty result
        Query::select("name", "no such employee"),
        Query::conjunction(vec![
            ExactSelect::new("dept", "dept-01"),
            ExactSelect::new("salary", 2000i64),
        ])
        .unwrap(),
    ]
}

fn check_all_queries<P: DatabasePh>(ph: &P, relation: &Relation) {
    for q in emp_queries() {
        check_homomorphism_law(ph, relation, &q)
            .unwrap_or_else(|e| panic!("{}: {q}: {e}", ph.scheme_name()));
    }
}

#[test]
fn swp_final_obeys_the_law() {
    let r = EmployeeGen {
        rows: 200,
        ..EmployeeGen::default()
    }
    .generate(1);
    let ph = FinalSwpPh::new(EmployeeGen::schema(), &key()).unwrap();
    check_all_queries(&ph, &r);
}

#[test]
fn varlen_obeys_the_law() {
    let r = EmployeeGen {
        rows: 200,
        ..EmployeeGen::default()
    }
    .generate(2);
    let ph = VarlenPh::new(EmployeeGen::schema(), &key()).unwrap();
    check_all_queries(&ph, &r);
}

#[test]
fn bucketization_obeys_the_law() {
    let r = EmployeeGen {
        rows: 200,
        ..EmployeeGen::default()
    }
    .generate(3);
    let cfg = BucketConfig::uniform(&EmployeeGen::schema(), 8, (0, 10_000)).unwrap();
    let ph = BucketizationPh::new(EmployeeGen::schema(), cfg, &key()).unwrap();
    check_all_queries(&ph, &r);
}

#[test]
fn damiani_obeys_the_law() {
    let r = EmployeeGen {
        rows: 200,
        ..EmployeeGen::default()
    }
    .generate(4);
    let ph = DamianiPh::new(EmployeeGen::schema(), &key()).unwrap();
    check_all_queries(&ph, &r);
}

#[test]
fn damiani_with_tiny_tags_obeys_the_law() {
    // 3-bit tags: collisions everywhere, filter must cope.
    let r = EmployeeGen {
        rows: 150,
        ..EmployeeGen::default()
    }
    .generate(5);
    let ph = DamianiPh::with_tag_bits(EmployeeGen::schema(), &key(), 3).unwrap();
    check_all_queries(&ph, &r);
}

#[test]
fn deterministic_obeys_the_law() {
    let r = EmployeeGen {
        rows: 200,
        ..EmployeeGen::default()
    }
    .generate(6);
    let ph = DeterministicPh::new(EmployeeGen::schema(), &key());
    check_all_queries(&ph, &r);
}

#[test]
fn plaintext_obeys_the_law() {
    let r = EmployeeGen {
        rows: 200,
        ..EmployeeGen::default()
    }
    .generate(7);
    let ph = PlaintextPh::new(EmployeeGen::schema());
    check_all_queries(&ph, &r);
}

#[test]
fn swp_ph_over_basic_scheme_obeys_the_law() {
    // Scheme I is the only other decryptable SWP variant; the generic
    // construction must satisfy Definition 1.1 over it too.
    use dbph::core::{SwpPh, WordCodec};
    use dbph::swp::{BasicScheme, SwpParams};
    let schema = EmployeeGen::schema();
    let word_len = WordCodec::new(schema.clone()).word_len();
    let scheme = BasicScheme::new(SwpParams::for_word_len(word_len).unwrap(), &key());
    let ph = SwpPh::over_scheme(schema, scheme, "swp-basic").unwrap();
    let r = EmployeeGen {
        rows: 100,
        ..EmployeeGen::default()
    }
    .generate(20);
    check_all_queries(&ph, &r);
}

#[test]
fn all_schemes_agree_on_hospital_workload() {
    let relation = HospitalConfig {
        patients: 300,
        ..HospitalConfig::default()
    }
    .generate(8);
    let queries: Vec<Query> = (1..=3i64)
        .map(|h| Query::select("hospital", Value::int(h)))
        .chain(std::iter::once(Query::select("outcome", true)))
        .collect();

    let swp = FinalSwpPh::new(hospital_schema(), &key()).unwrap();
    let varlen = VarlenPh::new(hospital_schema(), &key()).unwrap();
    let det = DeterministicPh::new(hospital_schema(), &key());
    for q in &queries {
        check_homomorphism_law(&swp, &relation, q).unwrap();
        check_homomorphism_law(&varlen, &relation, q).unwrap();
        check_homomorphism_law(&det, &relation, q).unwrap();
    }
}

#[test]
fn result_cardinality_is_what_the_plaintext_engine_says() {
    // The observable result-set size (pre-filter, exact schemes) must
    // equal plaintext selectivity — the quantity the paper's attacks
    // read off.
    let r = EmployeeGen {
        rows: 500,
        ..EmployeeGen::default()
    }
    .generate(9);
    let ph = FinalSwpPh::new(EmployeeGen::schema(), &key()).unwrap();
    let ct = ph.encrypt_table(&r).unwrap();
    for q in emp_queries() {
        let truth = dbph::relation::exec::select(&r, &q).unwrap().len();
        let qct = ph.encrypt_query(&q).unwrap();
        let server = FinalSwpPh::apply(&ct, &qct);
        // Default params: FP rate 2^-32, so sizes match exactly.
        assert_eq!(server.len(), truth, "{q}");
    }
}

#[test]
fn fresh_keys_produce_unlinkable_ciphertexts() {
    let r = EmployeeGen {
        rows: 20,
        ..EmployeeGen::default()
    }
    .generate(10);
    let ph1 = FinalSwpPh::new(EmployeeGen::schema(), &SecretKey::from_bytes([1u8; 32])).unwrap();
    let ph2 = FinalSwpPh::new(EmployeeGen::schema(), &SecretKey::from_bytes([2u8; 32])).unwrap();
    let c1 = ph1.encrypt_table(&r).unwrap();
    let c2 = ph2.encrypt_table(&r).unwrap();
    for ((_, w1), (_, w2)) in c1.docs.iter().zip(c2.docs.iter()) {
        assert_ne!(w1, w2, "same table under different keys must differ");
    }
}

#[test]
fn emp_paper_example_on_every_scheme() {
    // The §3 worked example must hold everywhere.
    let relation = Relation::from_tuples(
        emp_schema(),
        vec![
            dbph::relation::tuple!["Montgomery", "HR", 7500i64],
            dbph::relation::tuple!["Smith", "IT", 4900i64],
        ],
    )
    .unwrap();
    let q = Query::select("name", "Montgomery");

    check_homomorphism_law(
        &FinalSwpPh::new(emp_schema(), &key()).unwrap(),
        &relation,
        &q,
    )
    .unwrap();
    check_homomorphism_law(&VarlenPh::new(emp_schema(), &key()).unwrap(), &relation, &q).unwrap();
    check_homomorphism_law(&DeterministicPh::new(emp_schema(), &key()), &relation, &q).unwrap();
    check_homomorphism_law(
        &DamianiPh::new(emp_schema(), &key()).unwrap(),
        &relation,
        &q,
    )
    .unwrap();
    check_homomorphism_law(&PlaintextPh::new(emp_schema()), &relation, &q).unwrap();
    let cfg = BucketConfig::uniform(&emp_schema(), 8, (0, 10_000)).unwrap();
    check_homomorphism_law(
        &BucketizationPh::new(emp_schema(), cfg, &key()).unwrap(),
        &relation,
        &q,
    )
    .unwrap();
}
