//! Regression pins for the §3 false-positive remark on the *sharded*
//! execution path.
//!
//! The experiment binary (`exp_e4_false_positives`) prints the full
//! sweep; this suite pins its envelope so a refactor of the scan
//! engine — sharding, pooling, the trapdoor memo, the transport —
//! cannot silently bend the FP behavior:
//!
//! * the word-level FP rate stays within a band of the `2^-check_bits`
//!   prediction;
//! * the server's candidate set for a query is a superset of the true
//!   matches whose excess stays within a band of the predicted
//!   `(non-matches) × 2^-check_bits`;
//! * the candidate set is **identical** across shard counts and pool
//!   sizes at every check width — the FP budget is a property of the
//!   scheme parameters, never of the execution plan.
//!
//! Everything is keyed and seeded deterministically, so the measured
//! numbers are reproducible; the bands are still generous enough to
//! survive an intentional reseed.

use dbph::core::protocol::{ClientMessage, ServerResponse, WireTrapdoor};
use dbph::core::wire::{WireDecode, WireEncode};
use dbph::core::{DatabasePh, FinalSwpPh, Server, WordCodec};
use dbph::crypto::{DeterministicRng, EntropySource, SecretKey};
use dbph::relation::Query;
use dbph::swp::{matches, FinalScheme, Location, SearchableScheme, SwpParams, Word};
use dbph::workload::EmployeeGen;

/// Word-level FP rate: `n` random non-matching words against one
/// trapdoor (the experiment binary's measurement, shrunk for CI).
fn word_level_fp(check_bits: u32, n: usize) -> f64 {
    let params = SwpParams::new(13, 4, check_bits).unwrap();
    let mut rng = DeterministicRng::from_seed(4).child(&format!("fp-env-{check_bits}"));
    let scheme = FinalScheme::new(params, &SecretKey::generate(&mut rng));
    let target = Word::from_bytes_unchecked(b"target-word-!"[..13].to_vec());
    let trapdoor = scheme.trapdoor(&target).unwrap();

    let mut false_positives = 0usize;
    for i in 0..n {
        let mut bytes = vec![0u8; 13];
        rng.fill(&mut bytes);
        if bytes == target.as_bytes() {
            continue;
        }
        let w = Word::from_bytes_unchecked(bytes);
        let c = scheme.encrypt_word(Location::new(i as u64, 0), &w).unwrap();
        if matches(&params, &trapdoor, &c) {
            false_positives += 1;
        }
    }
    false_positives as f64 / n as f64
}

#[test]
fn word_level_fp_rate_tracks_prediction() {
    // Wide enough samples that the band is meaningful: at bits=4 the
    // expectation is 20000/16 = 1250 hits; a 40% band is ~14 sigma.
    for bits in [1u32, 2, 4] {
        let predicted = 2f64.powi(-(bits as i32));
        let measured = word_level_fp(bits, 20_000);
        let ratio = measured / predicted;
        assert!(
            (0.6..=1.6).contains(&ratio),
            "check_bits={bits}: measured {measured:.5} vs predicted {predicted:.5} (ratio {ratio:.3}) left the envelope"
        );
    }
}

/// Runs one query against a server of the given geometry and returns
/// the candidate count.
fn candidates(
    table: &dbph::core::EncryptedTable,
    terms: &[WireTrapdoor],
    shards: usize,
    workers: usize,
) -> usize {
    let server = Server::with_pool(shards, workers);
    let _ = server.handle(
        &ClientMessage::CreateTable {
            name: "Emp".into(),
            table: table.clone(),
        }
        .to_wire(),
    );
    let resp = server.handle(
        &ClientMessage::Query {
            name: "Emp".into(),
            terms: terms.to_vec(),
        }
        .to_wire(),
    );
    match ServerResponse::from_wire(&resp).unwrap() {
        ServerResponse::Table(t) => t.len(),
        other => panic!("unexpected response {other:?}"),
    }
}

#[test]
fn sharded_candidate_sets_stay_in_the_fp_envelope_and_are_plan_invariant() {
    let relation = EmployeeGen {
        rows: 400,
        ..EmployeeGen::default()
    }
    .generate(4);
    let schema = EmployeeGen::schema();
    let codec_len = WordCodec::new(schema.clone()).word_len();
    let query = Query::select("dept", "dept-00");
    let truth = dbph::relation::exec::select(&relation, &query)
        .unwrap()
        .len();
    assert!(truth > 0, "workload must contain true matches");

    for bits in [2u32, 4, 8] {
        let params = SwpParams::new(codec_len, 4, bits).unwrap();
        let ph =
            FinalSwpPh::with_params(schema.clone(), &SecretKey::from_bytes([91u8; 32]), params)
                .unwrap();
        let table = ph.encrypt_table(&relation).unwrap();
        let qct = ph.encrypt_query(&query).unwrap();
        let terms: Vec<WireTrapdoor> = qct.terms.iter().map(WireTrapdoor::from_trapdoor).collect();

        // Per-tuple FP probability: a tuple is a candidate when *any*
        // of its words trips the check, so the predicted excess is
        // bounded below by the single-word rate and above by
        // words-per-tuple times it. The pinned band covers both ends
        // with slack for the small-sample widths.
        let non_matches = (relation.len() - truth) as f64;
        let per_word = 2f64.powi(-(bits as i32));
        let words_per_tuple = schema.arity() as f64;
        let max_expected = non_matches * per_word * words_per_tuple;

        let reference = candidates(&table, &terms, 1, 1);
        let excess = reference - truth;
        assert!(
            reference >= truth,
            "check_bits={bits}: candidates must be a superset of true matches"
        );
        assert!(
            (excess as f64) <= 3.0 * max_expected + 10.0,
            "check_bits={bits}: {excess} false positives blow past the predicted ≤{max_expected:.1} envelope"
        );
        if bits <= 2 {
            // At 2 bits the expectation is large (≥90 tuples); a scan
            // that stopped producing false positives here would mean
            // the check semantics changed.
            assert!(
                (excess as f64) >= non_matches * per_word / 3.0,
                "check_bits={bits}: only {excess} false positives — far below prediction"
            );
        }

        // The execution plan must not move the needle at all.
        for shards in [1usize, 4, 8] {
            for workers in [1usize, 4] {
                assert_eq!(
                    candidates(&table, &terms, shards, workers),
                    reference,
                    "candidate count changed at {shards} shard(s) × {workers} worker(s) for check_bits={bits}"
                );
            }
        }
    }
}
