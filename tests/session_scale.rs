//! Session scale: the readiness front-end must carry a thousand-plus
//! concurrent sessions without changing a single byte.
//!
//! The thread-per-connection front-end burns one OS thread per
//! session; the poll-based event loop multiplexes them all onto one.
//! Both are Eve spending her own resources — so this suite pins:
//!
//! 1. **Scale.** ≥1k concurrent loopback connections, each pipelining
//!    a mixed batch of mutations, queries, and reads, all answered
//!    correctly and in per-session order, with a clean shutdown and an
//!    exact accepted-connection count.
//! 2. **Byte equality.** A fixed sequential session produces
//!    byte-identical responses *and* an identical [`Observer`]
//!    transcript across {event loop, thread-per-connection} ×
//!    {in-memory, group-commit durable, fsync-per-mutation durable} ×
//!    shard counts × pool sizes, versus the in-process baseline. The
//!    front-end and the committer change scheduling and timing only —
//!    never what Eve records.

use std::net::TcpStream;
use std::sync::{Arc, Barrier};

use dbph::core::codec;
use dbph::core::protocol::ClientMessage;
use dbph::core::wire::WireEncode as _;
use dbph::core::{DurableOptions, FrontEnd, NetServer, PooledClient, Server, TempDir, Transport};
use dbph::swp::{CipherWord, SwpParams};

fn params() -> SwpParams {
    SwpParams::new(13, 4, 32).unwrap()
}

fn word(seed: u64) -> CipherWord {
    CipherWord(vec![(seed % 251) as u8; 13])
}

fn doc(id: u64) -> (u64, Vec<CipherWord>) {
    (id, vec![word(id)])
}

fn table(n: usize) -> dbph::core::EncryptedTable {
    dbph::core::EncryptedTable {
        params: params(),
        docs: (0..n as u64).map(doc).collect(),
        next_doc_id: n as u64,
    }
}

/// The pipelined batch each stress session sends: create a private
/// table, mutate it, read it back (own and shared), query it, and
/// drop it — mutations, queries, batches, and error-free reads mixed
/// on one connection.
fn session_requests(i: usize) -> Vec<Vec<u8>> {
    let name = format!("s{i}");
    vec![
        ClientMessage::CreateTable {
            name: name.clone(),
            table: table(2),
        }
        .to_wire(),
        ClientMessage::Append {
            name: name.clone(),
            doc_id: 2,
            words: vec![word(2)],
        }
        .to_wire(),
        ClientMessage::QueryBatch {
            name: name.clone(),
            queries: vec![vec![], vec![]],
        }
        .to_wire(),
        ClientMessage::FetchAll { name: name.clone() }.to_wire(),
        ClientMessage::FetchAll {
            name: "shared".into(),
        }
        .to_wire(),
        ClientMessage::DropTable { name }.to_wire(),
    ]
}

#[test]
fn a_thousand_concurrent_sessions_pipeline_in_order() {
    const SESSIONS: usize = 1100;
    const SHARDS: usize = 3;

    let server = Server::with_pool(SHARDS, 2);
    let shared = ClientMessage::CreateTable {
        name: "shared".into(),
        table: table(5),
    }
    .to_wire();
    let _ = server.handle(&shared);

    // Expected bytes per session, computed once against an in-process
    // reference with the same shard count (responses are pinned
    // byte-identical across transports by earlier suites; session
    // tables are disjoint, so sessions are independent).
    let reference = Server::with_shards(SHARDS);
    let _ = reference.handle(&shared);
    let expected: Arc<Vec<Vec<u8>>> = Arc::new(
        session_requests(0)
            .iter()
            .map(|m| reference.handle(m))
            .collect(),
    );

    let handle = NetServer::spawn_with(server.clone(), "127.0.0.1:0", FrontEnd::EventLoop).unwrap();
    let addr = handle.addr();

    // Every thread connects first and only then starts its pipelined
    // batch — all SESSIONS connections are provably open at once.
    let barrier = Arc::new(Barrier::new(SESSIONS));
    let threads: Vec<_> = (0..SESSIONS)
        .map(|i| {
            let barrier = Arc::clone(&barrier);
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                barrier.wait();
                let requests = session_requests(i);
                for req in &requests {
                    codec::write_frame(&mut stream, req).unwrap();
                }
                for (k, want) in expected.iter().enumerate() {
                    let got = codec::read_frame(&mut stream)
                        .unwrap()
                        .unwrap_or_else(|| panic!("session {i}: EOF before response {k}"));
                    // Session 0's expected bytes mention "s0"; patch
                    // per-session names out by construction instead:
                    // requests are identical up to the table name, and
                    // the name never appears in these responses.
                    assert_eq!(got, *want, "session {i}: response {k} diverged");
                }
                // Server must not have extra responses buffered.
                drop(stream);
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    assert_eq!(
        handle.connections_accepted(),
        SESSIONS,
        "every session must be accepted exactly once"
    );
    // Every private table was dropped; only the shared one remains.
    assert_eq!(server.table_names(), vec!["shared".to_string()]);
    handle.shutdown();
}

/// One fixed sequential session, replayed through every deployment
/// combination; every response byte and every observer event must
/// match the in-process baseline.
fn matrix_session() -> Vec<Vec<u8>> {
    vec![
        ClientMessage::CreateTable {
            name: "m".into(),
            table: table(6),
        }
        .to_wire(),
        ClientMessage::AppendBatch {
            name: "m".into(),
            docs: vec![doc(6), doc(7)],
        }
        .to_wire(),
        ClientMessage::Query {
            name: "m".into(),
            terms: vec![],
        }
        .to_wire(),
        ClientMessage::FetchChunk {
            name: "m".into(),
            token: 0,
            max_bytes: 64,
        }
        .to_wire(),
        ClientMessage::DeleteDocs {
            name: "m".into(),
            doc_ids: vec![1, 4],
        }
        .to_wire(),
        ClientMessage::FetchAll { name: "m".into() }.to_wire(),
        ClientMessage::Query {
            name: "missing".into(),
            terms: vec![],
        }
        .to_wire(),
        ClientMessage::DropTable { name: "m".into() }.to_wire(),
    ]
}

#[derive(Clone, Copy, Debug)]
enum Store {
    InMemory,
    DurableGroup,
    DurablePerMutation,
}

#[test]
fn responses_and_transcripts_identical_across_front_ends_and_commit_modes() {
    let messages = matrix_session();
    for shards in [1usize, 3] {
        for workers in [1usize, 2] {
            let baseline = Server::with_pool(shards, workers);
            let baseline_responses: Vec<_> = messages.iter().map(|m| baseline.handle(m)).collect();
            let baseline_events = baseline.observer().events();

            for front_end in [FrontEnd::ThreadPerConnection, FrontEnd::EventLoop] {
                for store in [
                    Store::InMemory,
                    Store::DurableGroup,
                    Store::DurablePerMutation,
                ] {
                    let _tmp; // keeps the data dir alive through the run
                    let server = match store {
                        Store::InMemory => Server::with_pool(shards, workers),
                        Store::DurableGroup | Store::DurablePerMutation => {
                            let tmp = TempDir::new("matrix").unwrap();
                            let options = DurableOptions {
                                group_commit: matches!(store, Store::DurableGroup),
                                ..DurableOptions::default()
                            };
                            let server = Server::open_durable_with(
                                tmp.path(),
                                shards,
                                Some(workers),
                                options,
                            )
                            .unwrap();
                            _tmp = tmp;
                            server
                        }
                    };
                    let handle =
                        NetServer::spawn_with(server.clone(), "127.0.0.1:0", front_end).unwrap();
                    let pool = PooledClient::connect(handle.addr(), 2).unwrap();
                    let responses: Vec<_> = messages
                        .iter()
                        .map(|m| pool.call(m).expect("transport call"))
                        .collect();
                    let label = format!(
                        "{front_end:?} × {store:?} × {shards} shard(s) × {workers} worker(s)"
                    );
                    assert_eq!(
                        responses, baseline_responses,
                        "responses diverged at {label}"
                    );
                    assert_eq!(
                        server.observer().events(),
                        baseline_events,
                        "transcript diverged at {label}"
                    );
                    handle.shutdown();
                }
            }
        }
    }
}
