//! SQL-level equivalence: the encrypted deployment and the plaintext
//! reference engine must return identical rows for every statement of
//! a generated workload.

use dbph::core::{Client, FinalSwpPh, Server};
use dbph::crypto::{DeterministicRng, EntropySource, SecretKey};
use dbph::relation::sql::{self, ExecOutcome, Statement};
use dbph::relation::{Catalog, Tuple};

/// Runs one statement against both engines and asserts SELECT
/// agreement (order-insensitive).
fn run_both(
    reference: &mut Catalog,
    client: &mut Option<Client>,
    server: &Server,
    master: &SecretKey,
    statement_text: &str,
) {
    let reference_outcome = sql::execute(reference, statement_text).unwrap();
    match sql::parse_statement(statement_text).unwrap() {
        Statement::CreateTable(schema) => {
            let ph = FinalSwpPh::new(schema.clone(), master).unwrap();
            let mut c = Client::new(ph, server.clone());
            c.outsource(&dbph::relation::Relation::empty(schema))
                .unwrap();
            *client = Some(c);
        }
        Statement::Insert { rows, .. } => {
            let c = client.as_mut().expect("create first");
            for row in rows {
                c.insert(&Tuple::new(row)).unwrap();
            }
        }
        Statement::Select(stmt) => {
            let c = client.as_ref().expect("create first");
            let mut encrypted_rows = match &stmt.filter {
                Some(dnf) => {
                    let relation = c.select_dnf(dnf).unwrap();
                    dbph::relation::exec::project(&relation, &stmt.projection).unwrap()
                }
                None => {
                    let all = c.fetch_all().unwrap();
                    dbph::relation::exec::project(&all, &stmt.projection).unwrap()
                }
            };
            let ExecOutcome::Rows {
                rows: mut expected, ..
            } = reference_outcome
            else {
                panic!("reference did not produce rows");
            };
            encrypted_rows.sort();
            expected.sort();
            assert_eq!(encrypted_rows, expected, "{statement_text}");
        }
        Statement::Delete { filter, .. } => {
            let c = client.as_ref().expect("create first");
            let removed = c.delete(&filter).unwrap();
            assert_eq!(
                reference_outcome,
                ExecOutcome::Deleted(removed),
                "{statement_text}"
            );
        }
        Statement::DropTable(_) => {
            if let Some(c) = client.take() {
                c.drop_table().unwrap();
            }
        }
    }
}

#[test]
fn scripted_session_agrees() {
    let mut reference = Catalog::new();
    let server = Server::new();
    let master = SecretKey::from_bytes([81u8; 32]);
    let mut client = None;

    for stmt in [
        "CREATE TABLE Emp (name STRING(16), dept STRING(8), salary INT)",
        "INSERT INTO Emp VALUES ('Montgomery', 'HR', 7500), ('Smith', 'IT', 4900)",
        "INSERT INTO Emp VALUES ('Jones', 'IT', 1200)",
        "SELECT * FROM Emp WHERE dept = 'IT'",
        "SELECT name FROM Emp WHERE salary = 4900",
        "SELECT * FROM Emp WHERE name = 'Nobody'",
        "INSERT INTO Emp VALUES ('Ng', 'IT', 4900)",
        "SELECT name, salary FROM Emp WHERE dept = 'IT' AND salary = 4900",
        "SELECT * FROM Emp WHERE salary = 4900 OR dept = 'HR'",
        "SELECT name FROM Emp WHERE name = 'Jones' OR name = 'Ng' OR salary = 7500",
        "DELETE FROM Emp WHERE salary = 4900",
        "SELECT * FROM Emp",
        "DELETE FROM Emp WHERE dept = 'IT' AND salary = 1200",
        "SELECT * FROM Emp",
        "DROP TABLE Emp",
    ] {
        run_both(&mut reference, &mut client, &server, &master, stmt);
    }
}

#[test]
fn randomized_workload_agrees() {
    let mut rng = DeterministicRng::from_seed(4242);
    let mut reference = Catalog::new();
    let server = Server::new();
    let master = SecretKey::from_bytes([82u8; 32]);
    let mut client = None;

    run_both(
        &mut reference,
        &mut client,
        &server,
        &master,
        "CREATE TABLE T (k STRING(8), v INT)",
    );

    // 60 random inserts over a small value domain (to force collisions),
    // interleaved with selects over the same domain.
    for i in 0..60 {
        let k = rng.below(8);
        let v = rng.below(5) as i64;
        run_both(
            &mut reference,
            &mut client,
            &server,
            &master,
            &format!("INSERT INTO T VALUES ('key-{k}', {v})"),
        );
        if i % 5 == 0 {
            let probe_k = rng.below(8);
            run_both(
                &mut reference,
                &mut client,
                &server,
                &master,
                &format!("SELECT * FROM T WHERE k = 'key-{probe_k}'"),
            );
            let probe_v = rng.below(5) as i64;
            run_both(
                &mut reference,
                &mut client,
                &server,
                &master,
                &format!("SELECT k FROM T WHERE v = {probe_v}"),
            );
        }
    }
    run_both(
        &mut reference,
        &mut client,
        &server,
        &master,
        "SELECT * FROM T",
    );
}
