//! End-to-end outsourcing flows through the byte-level protocol,
//! including failure injection: corrupted wire bytes, corrupted
//! ciphertexts, stale appends, and cross-client isolation.

use dbph::core::protocol::{ClientMessage, ServerResponse, WireTrapdoor};
use dbph::core::wire::{WireDecode, WireEncode};
use dbph::core::{Client, DatabasePh, FinalSwpPh, Server};
use dbph::crypto::SecretKey;
use dbph::relation::schema::emp_schema;
use dbph::relation::{tuple, Query, Relation};
use dbph::workload::EmployeeGen;

fn setup(seed: u8) -> (Client, Server) {
    let server = Server::new();
    let ph = FinalSwpPh::new(EmployeeGen::schema(), &SecretKey::from_bytes([seed; 32])).unwrap();
    (Client::new(ph, server.clone()), server)
}

#[test]
fn large_table_full_lifecycle() {
    let (mut client, _server) = setup(1);
    let relation = EmployeeGen {
        rows: 1000,
        ..EmployeeGen::default()
    }
    .generate(11);
    client.outsource(&relation).unwrap();

    // Query a hot department.
    let result = client.select(&Query::select("dept", "dept-00")).unwrap();
    let expected =
        dbph::relation::exec::select(&relation, &Query::select("dept", "dept-00")).unwrap();
    assert!(result.same_multiset(&expected));

    // Insert a batch and re-query.
    for i in 0..50 {
        client
            .insert(&tuple![format!("new-{i:04}"), "dept-00", 5555i64])
            .unwrap();
    }
    let result = client.select(&Query::select("salary", 5555i64)).unwrap();
    assert_eq!(result.len(), 50);

    // Full download equals plaintext + inserts.
    let all = client.fetch_all().unwrap();
    assert_eq!(all.len(), 1050);

    client.drop_table().unwrap();
    assert!(client.fetch_all().is_err());
}

#[test]
fn multiple_tables_coexist_on_one_server() {
    let server = Server::new();
    let emp_ph = FinalSwpPh::new(EmployeeGen::schema(), &SecretKey::from_bytes([3u8; 32])).unwrap();
    let hosp_ph = FinalSwpPh::new(
        dbph::relation::schema::hospital_schema(),
        &SecretKey::from_bytes([4u8; 32]),
    )
    .unwrap();

    let mut emp_client = Client::new(emp_ph, server.clone());
    let mut hosp_client = Client::new(hosp_ph, server.clone());

    emp_client
        .outsource(
            &EmployeeGen {
                rows: 50,
                ..EmployeeGen::default()
            }
            .generate(12),
        )
        .unwrap();
    hosp_client
        .outsource(
            &dbph::workload::HospitalConfig {
                patients: 50,
                ..Default::default()
            }
            .generate(13),
        )
        .unwrap();

    assert_eq!(emp_client.fetch_all().unwrap().len(), 50);
    assert_eq!(hosp_client.fetch_all().unwrap().len(), 50);
    assert_eq!(server.observer().events().len(), 4); // 2 uploads + 2 fetches
}

#[test]
fn server_rejects_garbage_bytes_gracefully() {
    let server = Server::new();
    for garbage in [&[][..], &[0xFF][..], &[1, 2, 3][..], &[0u8; 1000][..]] {
        let resp = ServerResponse::from_wire(&server.handle(garbage)).unwrap();
        assert!(matches!(resp, ServerResponse::Error(_)), "{garbage:?}");
    }
}

#[test]
fn truncated_messages_are_rejected_not_panicking() {
    let (mut client, server) = setup(5);
    let relation = EmployeeGen {
        rows: 5,
        ..EmployeeGen::default()
    }
    .generate(14);
    client.outsource(&relation).unwrap();

    // Take a valid query message and truncate it at every prefix length.
    let ph = FinalSwpPh::new(EmployeeGen::schema(), &SecretKey::from_bytes([5u8; 32])).unwrap();
    let qct = ph.encrypt_query(&Query::select("dept", "dept-00")).unwrap();
    let msg = ClientMessage::Query {
        name: "Emp".into(),
        terms: qct.terms.iter().map(WireTrapdoor::from_trapdoor).collect(),
    }
    .to_wire();
    for cut in 0..msg.len() {
        let resp = ServerResponse::from_wire(&server.handle(&msg[..cut])).unwrap();
        assert!(matches!(resp, ServerResponse::Error(_)), "cut at {cut}");
    }
}

#[test]
fn corrupted_stored_word_is_filtered_or_detected() {
    // A malicious server flips bits in one stored cipher word. The
    // client either fails to decode the tuple (detected) or decodes a
    // garbled value that the false-positive filter screens out of
    // query results. Either way the result never contains a wrong
    // tuple silently matching the query.
    let ph = FinalSwpPh::new(emp_schema(), &SecretKey::from_bytes([6u8; 32])).unwrap();
    let relation = Relation::from_tuples(
        emp_schema(),
        vec![
            tuple!["Montgomery", "HR", 7500i64],
            tuple!["Smith", "IT", 4900i64],
        ],
    )
    .unwrap();
    let q = Query::select("dept", "HR");

    let mut ct = ph.encrypt_table(&relation).unwrap();
    // Corrupt the dept word of the matching tuple.
    ct.docs[0].1[1].0[3] ^= 0xFF;

    let qct = ph.encrypt_query(&q).unwrap();
    let server_result = FinalSwpPh::apply(&ct, &qct);
    match ph.decrypt_result(&server_result, &q) {
        Ok(result) => {
            // The corrupted tuple can no longer match dept = 'HR'.
            for t in result.tuples() {
                assert_eq!(t.get(1), Some(&dbph::relation::Value::str("HR")));
            }
        }
        Err(e) => {
            // Decode failure is an acceptable (detected) outcome.
            let msg = e.to_string();
            assert!(!msg.is_empty());
        }
    }
}

#[test]
fn stale_append_rejected_fresh_append_accepted() {
    let (mut client, server) = setup(7);
    client
        .outsource(
            &EmployeeGen {
                rows: 3,
                ..EmployeeGen::default()
            }
            .generate(15),
        )
        .unwrap();

    // Direct protocol-level stale append (doc id 0 already taken).
    let resp = ServerResponse::from_wire(
        &server.handle(
            &ClientMessage::Append {
                name: "Emp".into(),
                doc_id: 0,
                words: vec![],
            }
            .to_wire(),
        ),
    )
    .unwrap();
    assert!(matches!(resp, ServerResponse::Error(_)));

    // The client's own append path stays consistent.
    client.insert(&tuple!["fresh", "dept-00", 1i64]).unwrap();
    assert_eq!(client.fetch_all().unwrap().len(), 4);
}

#[test]
fn concurrent_clients_share_one_server_safely() {
    // The server's interior locking must hold up under parallel
    // clients on disjoint tables.
    let server = Server::new();
    std::thread::scope(|scope| {
        for worker in 0..4u8 {
            let server = server.clone();
            scope.spawn(move || {
                let schema = dbph::relation::Schema::new(
                    format!("T{worker}"),
                    vec![
                        dbph::relation::Attribute::new(
                            "k",
                            dbph::relation::AttrType::Str { max_len: 8 },
                        ),
                        dbph::relation::Attribute::new("v", dbph::relation::AttrType::Int),
                    ],
                )
                .unwrap();
                let ph =
                    FinalSwpPh::new(schema.clone(), &SecretKey::from_bytes([worker; 32])).unwrap();
                let mut client = Client::new(ph, server);
                client
                    .outsource(&dbph::relation::Relation::empty(schema))
                    .unwrap();
                for i in 0..30i64 {
                    client.insert(&tuple![format!("k{i:03}"), i]).unwrap();
                }
                let r = client.select(&Query::select("v", 7i64)).unwrap();
                assert_eq!(r.len(), 1);
                assert_eq!(client.fetch_all().unwrap().len(), 30);
            });
        }
    });
    // Four uploads + appends + queries + fetches all recorded.
    assert!(server.observer().events().len() >= 4 * 33);
}

#[test]
fn observer_transcript_contains_no_plaintext_for_any_workload() {
    let (mut client, server) = setup(8);
    let relation = EmployeeGen {
        rows: 100,
        ..EmployeeGen::default()
    }
    .generate(16);
    client.outsource(&relation).unwrap();
    for q in [
        Query::select("dept", "dept-01"),
        Query::select("salary", 1000i64),
        Query::select("name", "emp-0000050"),
    ] {
        client.select(&q).unwrap();
    }
    let transcript = format!("{:?}", server.observer().events());
    for needle in ["dept-01", "emp-0000050", "1000"] {
        assert!(!transcript.contains(needle), "leaked {needle}");
    }
}
